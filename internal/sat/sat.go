// Package sat is a small complete SAT solver used as a verification
// substrate: the generator tests use it to prove that generated instances
// are satisfiable and that 3ONESAT-GEN instances have exactly one solution,
// and the CLI uses it as a centralized baseline.
//
// The solver is a recursive DPLL with unit propagation and a
// most-occurrences branching heuristic — deliberately simple, stdlib-only,
// and fast enough for the paper's instance sizes (n ≤ 200, m ≤ 4.3n).
package sat

import (
	"fmt"

	"github.com/discsp/discsp/internal/csp"
)

// value is a three-state assignment entry.
type value int8

const (
	unassigned value = iota
	vFalse
	vTrue
)

// Solver holds one formula. Construct with New; a Solver may be reused for
// multiple queries (each query restarts from an empty assignment).
type Solver struct {
	numVars int
	clauses [][]int
	// occur[v] lists clause indices containing variable v+1 (either sign).
	occur [][]int

	assign []value
	trail  []int
	stats  Stats
}

// Stats counts solver work for tests and tuning.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
}

// New builds a solver for the formula. Empty clauses are legal and make the
// formula trivially unsatisfiable.
func New(cnf *csp.CNF) (*Solver, error) {
	s := &Solver{
		numVars: cnf.NumVars,
		clauses: make([][]int, len(cnf.Clauses)),
		occur:   make([][]int, cnf.NumVars),
		assign:  make([]value, cnf.NumVars),
	}
	for i, cl := range cnf.Clauses {
		cp := make([]int, len(cl))
		copy(cp, cl)
		s.clauses[i] = cp
		for _, lit := range cl {
			v := lit
			if v < 0 {
				v = -v
			}
			if v < 1 || v > cnf.NumVars {
				return nil, fmt.Errorf("sat: literal %d out of range 1..%d", lit, cnf.NumVars)
			}
			s.occur[v-1] = append(s.occur[v-1], i)
		}
	}
	return s, nil
}

// Stats returns cumulative work counters.
func (s *Solver) Stats() Stats { return s.stats }

// Solve reports satisfiability; when satisfiable, the returned slice maps
// variable i (0-based) to its value.
func (s *Solver) Solve() ([]bool, bool) {
	models := s.Enumerate(1)
	if len(models) == 0 {
		return nil, false
	}
	return models[0], true
}

// Enumerate returns up to limit satisfying assignments. Enumerate(2) is the
// uniqueness test used by the 3ONESAT-GEN verifier: exactly one model in the
// result means exactly one solution exists.
func (s *Solver) Enumerate(limit int) [][]bool {
	if limit <= 0 {
		return nil
	}
	for i := range s.assign {
		s.assign[i] = unassigned
	}
	s.trail = s.trail[:0]
	var models [][]bool
	s.search(limit, &models)
	return models
}

// search extends the current partial assignment; it appends up to
// limit-len(*models) models and returns when the subtree is exhausted or the
// limit is reached.
func (s *Solver) search(limit int, models *[][]bool) {
	mark := len(s.trail)
	if !s.propagate() {
		s.undoTo(mark)
		return
	}
	v := s.pickBranchVar()
	if v < 0 {
		// All variables assigned: a model. Free variables cannot exist
		// here because pickBranchVar found none.
		model := make([]bool, s.numVars)
		for i, a := range s.assign {
			model[i] = a == vTrue
		}
		*models = append(*models, model)
		s.undoTo(mark)
		return
	}
	s.stats.Decisions++
	for _, val := range [2]value{vTrue, vFalse} {
		sub := len(s.trail)
		s.set(v, val)
		s.search(limit, models)
		s.undoTo(sub)
		if len(*models) >= limit {
			break
		}
	}
	s.undoTo(mark)
}

// propagate runs unit propagation to fixpoint. It returns false on conflict
// (some clause has every literal false).
func (s *Solver) propagate() bool {
	for {
		progress := false
		for ci, cl := range s.clauses {
			sat, unassignedLit, unassignedCount := s.inspect(cl)
			if sat {
				continue
			}
			switch unassignedCount {
			case 0:
				s.stats.Conflicts++
				_ = ci
				return false
			case 1:
				s.stats.Propagations++
				if unassignedLit > 0 {
					s.set(unassignedLit-1, vTrue)
				} else {
					s.set(-unassignedLit-1, vFalse)
				}
				progress = true
			}
		}
		if !progress {
			return true
		}
	}
}

// inspect scans a clause: whether it is satisfied, and otherwise one
// unassigned literal and the count of unassigned literals.
func (s *Solver) inspect(cl []int) (sat bool, unassignedLit, unassignedCount int) {
	for _, lit := range cl {
		v := lit
		if v < 0 {
			v = -v
		}
		switch s.assign[v-1] {
		case unassigned:
			unassignedLit = lit
			unassignedCount++
		case vTrue:
			if lit > 0 {
				return true, 0, 0
			}
		case vFalse:
			if lit < 0 {
				return true, 0, 0
			}
		}
	}
	return false, unassignedLit, unassignedCount
}

// pickBranchVar chooses the unassigned variable occurring in the most
// clauses that are not yet satisfied; -1 when every variable is assigned.
func (s *Solver) pickBranchVar() int {
	best, bestScore := -1, -1
	for v := 0; v < s.numVars; v++ {
		if s.assign[v] != unassigned {
			continue
		}
		score := 0
		for _, ci := range s.occur[v] {
			if sat, _, _ := s.inspect(s.clauses[ci]); !sat {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

func (s *Solver) set(v int, val value) {
	s.assign[v] = val
	s.trail = append(s.trail, v)
}

func (s *Solver) undoTo(mark int) {
	for len(s.trail) > mark {
		v := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[v] = unassigned
	}
}

// Verify reports whether model satisfies the formula; used by tests to
// cross-check solver output independently of the search.
func Verify(cnf *csp.CNF, model []bool) bool {
	if len(model) < cnf.NumVars {
		return false
	}
	for _, cl := range cnf.Clauses {
		sat := false
		for _, lit := range cl {
			v := lit
			if v < 0 {
				v = -v
			}
			if (lit > 0) == model[v-1] {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}
