package sat

import (
	"math/rand"
	"testing"

	"github.com/discsp/discsp/internal/csp"
)

func mustSolver(t *testing.T, cnf *csp.CNF) *Solver {
	t.Helper()
	s, err := New(cnf)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSolveTrivial(t *testing.T) {
	// (x1) ∧ (¬x2)
	cnf := &csp.CNF{NumVars: 2, Clauses: [][]int{{1}, {-2}}}
	model, ok := mustSolver(t, cnf).Solve()
	if !ok {
		t.Fatalf("unsat")
	}
	if !model[0] || model[1] {
		t.Errorf("model = %v, want [true false]", model)
	}
}

func TestSolveUnsat(t *testing.T) {
	// (x1) ∧ (¬x1)
	cnf := &csp.CNF{NumVars: 1, Clauses: [][]int{{1}, {-1}}}
	if _, ok := mustSolver(t, cnf).Solve(); ok {
		t.Fatalf("sat on contradiction")
	}
}

func TestSolveEmptyClause(t *testing.T) {
	cnf := &csp.CNF{NumVars: 1, Clauses: [][]int{{}}}
	if _, ok := mustSolver(t, cnf).Solve(); ok {
		t.Fatalf("sat with empty clause")
	}
}

func TestSolveNoClauses(t *testing.T) {
	cnf := &csp.CNF{NumVars: 3, Clauses: nil}
	model, ok := mustSolver(t, cnf).Solve()
	if !ok || len(model) != 3 {
		t.Fatalf("empty formula: ok=%v model=%v", ok, model)
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New(&csp.CNF{NumVars: 2, Clauses: [][]int{{3}}}); err == nil {
		t.Fatal("accepted literal out of range")
	}
	if _, err := New(&csp.CNF{NumVars: 2, Clauses: [][]int{{0}}}); err == nil {
		t.Fatal("accepted zero literal")
	}
}

func TestEnumerateCountsModels(t *testing.T) {
	// (x1 ∨ x2): 3 models.
	cnf := &csp.CNF{NumVars: 2, Clauses: [][]int{{1, 2}}}
	models := mustSolver(t, cnf).Enumerate(10)
	if len(models) != 3 {
		t.Fatalf("got %d models, want 3", len(models))
	}
	seen := make(map[[2]bool]bool)
	for _, m := range models {
		key := [2]bool{m[0], m[1]}
		if seen[key] {
			t.Fatalf("duplicate model %v", m)
		}
		seen[key] = true
		if !Verify(cnf, m) {
			t.Fatalf("model %v does not verify", m)
		}
	}
	if seen[[2]bool{false, false}] {
		t.Fatalf("enumerated the falsifying assignment")
	}
}

func TestEnumerateRespectsLimit(t *testing.T) {
	cnf := &csp.CNF{NumVars: 4, Clauses: [][]int{{1, 2, 3, 4}}}
	if got := len(mustSolver(t, cnf).Enumerate(2)); got != 2 {
		t.Fatalf("limit 2 returned %d", got)
	}
	if got := len(mustSolver(t, cnf).Enumerate(0)); got != 0 {
		t.Fatalf("limit 0 returned %d", got)
	}
}

func TestSolverReusable(t *testing.T) {
	cnf := &csp.CNF{NumVars: 2, Clauses: [][]int{{1, 2}}}
	s := mustSolver(t, cnf)
	first := len(s.Enumerate(10))
	second := len(s.Enumerate(10))
	if first != second {
		t.Fatalf("reuse changed result: %d vs %d", first, second)
	}
}

func TestVerify(t *testing.T) {
	cnf := &csp.CNF{NumVars: 2, Clauses: [][]int{{1, -2}}}
	if !Verify(cnf, []bool{true, true}) {
		t.Errorf("satisfying model rejected")
	}
	if Verify(cnf, []bool{false, true}) {
		t.Errorf("falsifying model accepted")
	}
	if Verify(cnf, []bool{true}) {
		t.Errorf("short model accepted")
	}
}

// TestAgainstBruteForce cross-checks Solve and Enumerate against exhaustive
// enumeration on random small formulas.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(7)
		m := rng.Intn(12)
		cnf := &csp.CNF{NumVars: n}
		for i := 0; i < m; i++ {
			size := 1 + rng.Intn(3)
			cl := make([]int, 0, size)
			for j := 0; j < size; j++ {
				lit := 1 + rng.Intn(n)
				if rng.Intn(2) == 1 {
					lit = -lit
				}
				cl = append(cl, lit)
			}
			cnf.Clauses = append(cnf.Clauses, cl)
		}
		wantCount := 0
		for bits := 0; bits < 1<<n; bits++ {
			model := make([]bool, n)
			for v := 0; v < n; v++ {
				model[v] = bits>>v&1 == 1
			}
			if Verify(cnf, model) {
				wantCount++
			}
		}
		s := mustSolver(t, cnf)
		models := s.Enumerate(1 << n)
		if len(models) != wantCount {
			t.Fatalf("trial %d: enumerate found %d models, brute force %d (cnf=%v)",
				trial, len(models), wantCount, cnf.Clauses)
		}
		for _, m := range models {
			if !Verify(cnf, m) {
				t.Fatalf("trial %d: bogus model %v", trial, m)
			}
		}
		if _, ok := s.Solve(); ok != (wantCount > 0) {
			t.Fatalf("trial %d: Solve=%v, want %v", trial, ok, wantCount > 0)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	cnf := &csp.CNF{NumVars: 3, Clauses: [][]int{{1, 2, 3}, {-1, -2}, {-2, -3}, {2, 3}}}
	s := mustSolver(t, cnf)
	if _, ok := s.Solve(); !ok {
		t.Fatalf("unsat")
	}
	st := s.Stats()
	if st.Decisions == 0 && st.Propagations == 0 {
		t.Errorf("no work recorded: %+v", st)
	}
}
