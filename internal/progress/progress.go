// Package progress provides the stall watchdog shared by the asynchronous
// runtime (internal/async) and the TCP runtime (internal/netrun): a
// monitor that samples delivery counters, per-agent processed counts, and a
// "frontier" hash of the search state, so that when a run hits its deadline
// the *TimeoutError can say *how* it was stuck instead of only that it was.
//
// The watchdog distinguishes three terminal shapes:
//
//   - stalled: no message was delivered over the observation window while
//     work was still in flight — traffic is wedged (a never-healing
//     partition, a dead peer the schedule will not restart);
//   - livelock: deliveries keep advancing but the frontier (the published
//     assignment and insolubility state) has not moved for a long time —
//     agents are exchanging messages without making search progress;
//   - converging: both deliveries and the frontier are advancing — the run
//     is slow, not stuck, and a longer deadline would likely finish it.
//
// The watchdog never aborts a run on its own; the runtimes consult it
// exactly when their deadline expires and attach the Report to the timeout
// error.
package progress

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// State classifies a stuck run; see the package comment.
type State string

const (
	// StateStalled marks a window with zero deliveries.
	StateStalled State = "stalled"
	// StateLivelock marks advancing deliveries under a frozen frontier.
	StateLivelock State = "livelock"
	// StateConverging marks advancing deliveries and a moving frontier.
	StateConverging State = "converging"
	// StateUnknown is reported before two samples exist.
	StateUnknown State = "unknown"
)

// DefaultWindow is the observation window deltas are computed over when
// Watchdog.Window is zero.
const DefaultWindow = time.Second

// DefaultCadence is the sampling period the runtimes feed their watchdogs
// at when no cadence is configured: coarse enough that the sample ring
// spans well past DefaultWindow, fine enough to catch short stalls. The
// async and tcp runtimes expose it as Options.WatchdogCadence.
const DefaultCadence = 25 * time.Millisecond

// maxSamples bounds the sample ring. At the runtimes' observation cadence
// the ring spans well past DefaultWindow; memory stays fixed regardless of
// run length.
const maxSamples = 64

// Sample is one observation of a runtime's progress counters.
type Sample struct {
	// At is the observation time.
	At time.Time
	// Delivered is the cumulative number of messages processed by agents.
	Delivered int64
	// InFlight is the number of messages routed but not yet processed.
	InFlight int64
	// Processed is the cumulative per-agent processed count, indexed by
	// variable. The watchdog copies it.
	Processed []int64
	// Frontier is a hash of the search frontier (published assignment,
	// insolubility flags, any best-priority data the runtime has). Equal
	// hashes between samples mean no observable search progress.
	Frontier uint64
}

// AgentProgress is one agent's row in a Report.
type AgentProgress struct {
	// Agent is the agent id (= variable).
	Agent int
	// Processed is the cumulative processed count at the last sample.
	Processed int64
	// Delta is the processed count gained over the report's window.
	Delta int64
}

// Report is the watchdog's verdict on a stuck run.
type Report struct {
	// State classifies the stall; see the package comment.
	State State
	// Window is the span the deltas cover.
	Window time.Duration
	// Delivered is the cumulative delivered count at the last sample.
	Delivered int64
	// DeliveredDelta is the deliveries gained over the window.
	DeliveredDelta int64
	// InFlight is the in-flight count at the last sample.
	InFlight int64
	// SinceFrontier is the time since the frontier hash last changed.
	SinceFrontier time.Duration
	// Agents is the per-agent progress, indexed by variable.
	Agents []AgentProgress
	// Down lists agents the runtime considers unreachable at report time
	// (dead-peer detections and unexpired reconnect grace windows). Only
	// runtimes with liveness tracking fill it; nil means "none known".
	Down []int
}

// String renders the report in one line, agents compacted as
// "id:+delta/total". It is embedded in the runtimes' timeout errors.
func (r *Report) String() string {
	if r == nil {
		return "no progress report"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %+d deliveries over %v (total %d, %d in flight), frontier last moved %v ago",
		r.State, r.DeliveredDelta, r.Window.Round(time.Millisecond), r.Delivered, r.InFlight,
		r.SinceFrontier.Round(time.Millisecond))
	if len(r.Down) > 0 {
		fmt.Fprintf(&b, "; down %v", r.Down)
	}
	b.WriteString("; agents")
	const maxListed = 16
	for i, a := range r.Agents {
		if i == maxListed {
			fmt.Fprintf(&b, " … (%d more)", len(r.Agents)-maxListed)
			break
		}
		fmt.Fprintf(&b, " %d:%+d/%d", a.Agent, a.Delta, a.Processed)
	}
	return b.String()
}

// Watchdog accumulates samples and classifies stalls. The zero value is not
// usable; construct with NewWatchdog. All methods are safe for concurrent
// use.
type Watchdog struct {
	// Window is the span deltas are computed over; 0 means DefaultWindow.
	Window time.Duration

	mu            sync.Mutex
	ring          []Sample // at most maxSamples, oldest first
	frontierMoved time.Time
	lastFrontier  uint64
	observations  int64
}

// NewWatchdog returns an empty watchdog with the default window.
func NewWatchdog() *Watchdog {
	return &Watchdog{}
}

// Observe records one sample. Samples must arrive in time order; the
// runtimes call this from their single monitor loop.
func (w *Watchdog) Observe(s Sample) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s.Processed = append([]int64(nil), s.Processed...)
	if w.observations == 0 || s.Frontier != w.lastFrontier {
		w.frontierMoved = s.At
		w.lastFrontier = s.Frontier
	}
	w.observations++
	if len(w.ring) == maxSamples {
		copy(w.ring, w.ring[1:])
		w.ring = w.ring[:maxSamples-1]
	}
	w.ring = append(w.ring, s)
}

// Report classifies the run's progress as of now. It returns nil when fewer
// than two samples exist (nothing to compare).
func (w *Watchdog) Report(now time.Time) *Report {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.ring) < 2 {
		return nil
	}
	window := w.Window
	if window <= 0 {
		window = DefaultWindow
	}
	last := w.ring[len(w.ring)-1]
	// Baseline: the oldest retained sample no older than the window start,
	// falling back to the oldest retained.
	base := w.ring[0]
	cutoff := last.At.Add(-window)
	for _, s := range w.ring {
		if s.At.After(cutoff) {
			break
		}
		base = s
	}
	r := &Report{
		Window:         last.At.Sub(base.At),
		Delivered:      last.Delivered,
		DeliveredDelta: last.Delivered - base.Delivered,
		InFlight:       last.InFlight,
		SinceFrontier:  now.Sub(w.frontierMoved),
		Agents:         make([]AgentProgress, len(last.Processed)),
	}
	for i, p := range last.Processed {
		var prev int64
		if i < len(base.Processed) {
			prev = base.Processed[i]
		}
		r.Agents[i] = AgentProgress{Agent: i, Processed: p, Delta: p - prev}
	}
	switch {
	case r.DeliveredDelta == 0:
		r.State = StateStalled
	case r.SinceFrontier > r.Window:
		r.State = StateLivelock
	default:
		r.State = StateConverging
	}
	return r
}

// Hash64 folds the given words into a frontier hash using the SplitMix64
// finalizer. Runtimes feed it the published assignment (and any other
// frontier data); equal inputs hash equal, and any change almost surely
// changes the hash.
func Hash64(words ...int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, wrd := range words {
		h ^= uint64(wrd)
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
