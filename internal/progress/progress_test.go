package progress

import (
	"strings"
	"testing"
	"time"
)

func at(ms int) time.Time {
	return time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond)
}

func TestReportNeedsTwoSamples(t *testing.T) {
	w := NewWatchdog()
	if r := w.Report(at(0)); r != nil {
		t.Fatalf("report from zero samples: %+v", r)
	}
	w.Observe(Sample{At: at(0), Delivered: 1, Processed: []int64{1}})
	if r := w.Report(at(10)); r != nil {
		t.Fatalf("report from one sample: %+v", r)
	}
}

func TestStalled(t *testing.T) {
	w := NewWatchdog()
	// Deliveries advance early, then freeze with work still in flight.
	w.Observe(Sample{At: at(0), Delivered: 10, InFlight: 4, Processed: []int64{6, 4}, Frontier: 1})
	w.Observe(Sample{At: at(1500), Delivered: 10, InFlight: 4, Processed: []int64{6, 4}, Frontier: 1})
	w.Observe(Sample{At: at(2500), Delivered: 10, InFlight: 4, Processed: []int64{6, 4}, Frontier: 1})
	r := w.Report(at(2500))
	if r.State != StateStalled {
		t.Fatalf("state = %s, want stalled (report: %s)", r.State, r)
	}
	if r.InFlight != 4 || r.Delivered != 10 || r.DeliveredDelta != 0 {
		t.Errorf("counters wrong: %+v", r)
	}
	if len(r.Agents) != 2 || r.Agents[1].Processed != 4 || r.Agents[1].Delta != 0 {
		t.Errorf("agents wrong: %+v", r.Agents)
	}
}

func TestLivelock(t *testing.T) {
	w := NewWatchdog()
	// Deliveries keep climbing; the frontier froze at the first sample.
	for i := 0; i <= 30; i++ {
		w.Observe(Sample{
			At:        at(i * 100),
			Delivered: int64(10 * i),
			InFlight:  2,
			Processed: []int64{int64(5 * i), int64(5 * i)},
			Frontier:  7,
		})
	}
	r := w.Report(at(3000))
	if r.State != StateLivelock {
		t.Fatalf("state = %s, want livelock (report: %s)", r.State, r)
	}
	if r.DeliveredDelta <= 0 {
		t.Errorf("delivered delta = %d, want > 0", r.DeliveredDelta)
	}
	if r.SinceFrontier < 2900*time.Millisecond {
		t.Errorf("since-frontier = %v, want ≈3s", r.SinceFrontier)
	}
	if r.Agents[0].Delta <= 0 {
		t.Errorf("agent deltas should advance under livelock: %+v", r.Agents[0])
	}
}

func TestConverging(t *testing.T) {
	w := NewWatchdog()
	for i := 0; i <= 30; i++ {
		w.Observe(Sample{
			At:        at(i * 100),
			Delivered: int64(10 * i),
			Processed: []int64{int64(10 * i)},
			Frontier:  uint64(i), // frontier moves every sample
		})
	}
	r := w.Report(at(3000))
	if r.State != StateConverging {
		t.Fatalf("state = %s, want converging (report: %s)", r.State, r)
	}
}

// TestWindowBaseline pins that deltas cover roughly the configured window,
// not the whole run.
func TestWindowBaseline(t *testing.T) {
	w := NewWatchdog()
	w.Window = 500 * time.Millisecond
	for i := 0; i <= 20; i++ {
		w.Observe(Sample{At: at(i * 100), Delivered: int64(i), Processed: []int64{int64(i)}, Frontier: uint64(i)})
	}
	r := w.Report(at(2000))
	if r.Window > 700*time.Millisecond {
		t.Errorf("window = %v, want ≈500ms", r.Window)
	}
	if r.DeliveredDelta > 7 {
		t.Errorf("delivered delta = %d spans more than the window", r.DeliveredDelta)
	}
}

// TestRingBounded pins constant memory under long observation.
func TestRingBounded(t *testing.T) {
	w := NewWatchdog()
	for i := 0; i < 10*maxSamples; i++ {
		w.Observe(Sample{At: at(i), Delivered: int64(i)})
	}
	if len(w.ring) != maxSamples {
		t.Fatalf("ring length = %d, want %d", len(w.ring), maxSamples)
	}
	if w.ring[0].Delivered != int64(10*maxSamples-maxSamples) {
		t.Errorf("oldest retained sample = %+v; ring did not slide", w.ring[0])
	}
}

func TestReportString(t *testing.T) {
	w := NewWatchdog()
	w.Observe(Sample{At: at(0), Delivered: 5, InFlight: 3, Processed: []int64{2, 3}, Frontier: 1})
	w.Observe(Sample{At: at(2000), Delivered: 5, InFlight: 3, Processed: []int64{2, 3}, Frontier: 1})
	s := w.Report(at(2000)).String()
	for _, want := range []string{"stalled", "3 in flight", "0:+0/2", "1:+0/3"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
	var nilReport *Report
	if nilReport.String() == "" {
		t.Error("nil report must render a placeholder")
	}
}

func TestReportStringTruncatesAgents(t *testing.T) {
	w := NewWatchdog()
	many := make([]int64, 40)
	w.Observe(Sample{At: at(0), Delivered: 1, Processed: many})
	w.Observe(Sample{At: at(1000), Delivered: 1, Processed: many})
	s := w.Report(at(1000)).String()
	if !strings.Contains(s, "more)") {
		t.Errorf("report over 40 agents should truncate the list: %q", s)
	}
}

func TestHash64(t *testing.T) {
	a := Hash64(1, 2, 3)
	if a != Hash64(1, 2, 3) {
		t.Error("Hash64 not deterministic")
	}
	if a == Hash64(1, 2, 4) || a == Hash64(3, 2, 1) || a == Hash64(1, 2) {
		t.Error("Hash64 collides on trivially different inputs")
	}
}
