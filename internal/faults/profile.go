// Fault profiles: a compact textual syntax for Config so chaos
// configurations are reproducible from the command line (dcspsolve -faults,
// dcspbench -faults) instead of only from Go tests.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ProfileSyntax documents the -faults grammar for CLI usage strings.
const ProfileSyntax = "drop=P,dup=P,corrupt=P,delay=DUR,attempts=N," +
	"crash=AGENT@STEPS[r[DUR]],partition=AT+DUR|AT+never  (or the preset 'chaos')"

// ParseProfile parses a comma-separated fault profile into a Config with
// the given schedule seed. The empty profile returns nil (no faults).
// Tokens:
//
//	drop=0.1          per-attempt delivery loss probability
//	dup=0.05          per-message duplication probability
//	corrupt=0.05      per-attempt payload corruption probability
//	delay=2ms         bound on injected extra delivery delay
//	attempts=8        drop-streak cap (MaxAttempts)
//	crash=2@1         agent 2 crashes after 1 step, for good
//	crash=2@1r        ... and restarts after the default downtime
//	crash=2@1r20ms    ... and restarts after 20ms
//	partition=50ms+200ms   partition window opening at 50ms, healing at 250ms
//	partition=0s+never     permanent partition from the start
//
// crash= and partition= may repeat. The preset name "chaos" expands to the
// acceptance schedule used by the chaos test suite: 10% drop, 10%
// duplication, 1ms delay bound, and one crash-restart of agent 2.
func ParseProfile(profile string, seed int64) (*Config, error) {
	profile = strings.TrimSpace(profile)
	if profile == "" {
		return nil, nil
	}
	if profile == "chaos" {
		return &Config{
			Seed:      seed,
			Drop:      0.10,
			Duplicate: 0.10,
			MaxDelay:  time.Millisecond,
			Crashes:   []Crash{{Agent: 2, AfterSteps: 1, Restart: true}},
		}, nil
	}
	cfg := &Config{Seed: seed}
	for _, tok := range strings.Split(profile, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("faults: token %q is not key=value", tok)
		}
		var err error
		switch key {
		case "drop":
			err = parseProb(val, &cfg.Drop)
		case "dup":
			err = parseProb(val, &cfg.Duplicate)
		case "corrupt":
			err = parseProb(val, &cfg.Corrupt)
		case "delay":
			cfg.MaxDelay, err = parsePositiveDuration(val)
		case "attempts":
			cfg.MaxAttempts, err = strconv.Atoi(val)
			if err == nil && cfg.MaxAttempts <= 0 {
				err = fmt.Errorf("want a positive count")
			}
		case "crash":
			var c Crash
			c, err = parseCrash(val)
			if err == nil {
				cfg.Crashes = append(cfg.Crashes, c)
			}
		case "partition":
			var p Partition
			p, err = parsePartition(val)
			if err == nil {
				cfg.Partitions = append(cfg.Partitions, p)
			}
		default:
			return nil, fmt.Errorf("faults: unknown profile key %q (syntax: %s)", key, ProfileSyntax)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad %s=%s: %v", key, val, err)
		}
	}
	return cfg, nil
}

func parseProb(s string, out *float64) error {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	if p < 0 || p >= 1 {
		return fmt.Errorf("want a probability in [0, 1)")
	}
	*out = p
	return nil
}

func parsePositiveDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("want a positive duration")
	}
	return d, nil
}

// parseCrash parses AGENT@STEPS, with an optional trailing r[DUR] marking a
// restart (after DUR downtime; default downtime when DUR is omitted).
func parseCrash(s string) (Crash, error) {
	agentStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Crash{}, fmt.Errorf("want AGENT@STEPS[r[DUR]]")
	}
	agent, err := strconv.Atoi(agentStr)
	if err != nil || agent < 0 {
		return Crash{}, fmt.Errorf("bad agent %q", agentStr)
	}
	c := Crash{Agent: agent}
	stepsStr := rest
	if i := strings.IndexByte(rest, 'r'); i >= 0 {
		stepsStr = rest[:i]
		c.Restart = true
		if delay := rest[i+1:]; delay != "" {
			c.RestartDelay, err = parsePositiveDuration(delay)
			if err != nil {
				return Crash{}, fmt.Errorf("bad restart delay %q: %v", delay, err)
			}
		}
	}
	c.AfterSteps, err = strconv.Atoi(stepsStr)
	if err != nil || c.AfterSteps < 0 {
		return Crash{}, fmt.Errorf("bad step count %q", stepsStr)
	}
	return c, nil
}

// parsePartition parses AT+DUR or AT+never.
func parsePartition(s string) (Partition, error) {
	atStr, durStr, ok := strings.Cut(s, "+")
	if !ok {
		return Partition{}, fmt.Errorf("want AT+DUR or AT+never")
	}
	at, err := time.ParseDuration(atStr)
	if err != nil || at < 0 {
		return Partition{}, fmt.Errorf("bad start offset %q", atStr)
	}
	if durStr == "never" {
		return Partition{At: at}, nil
	}
	dur, err := parsePositiveDuration(durStr)
	if err != nil {
		return Partition{}, fmt.Errorf("bad duration %q: %v", durStr, err)
	}
	return Partition{At: at, Dur: dur}, nil
}
