package faults

import (
	"testing"
	"time"
)

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.3, Duplicate: 0.2, MaxDelay: 5 * time.Millisecond}
	a, b := New(cfg), New(cfg)
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			for seq := int64(1); seq <= 50; seq++ {
				for attempt := 0; attempt < 3; attempt++ {
					if a.Dropped(from, to, seq, attempt) != b.Dropped(from, to, seq, attempt) {
						t.Fatalf("drop decision diverged at %d→%d seq %d attempt %d", from, to, seq, attempt)
					}
				}
				if a.Duplicated(from, to, seq) != b.Duplicated(from, to, seq) {
					t.Fatalf("dup decision diverged at %d→%d seq %d", from, to, seq)
				}
				if a.Delay(from, to, seq, 0) != b.Delay(from, to, seq, 0) {
					t.Fatalf("delay diverged at %d→%d seq %d", from, to, seq)
				}
			}
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := New(Config{Seed: 1, Drop: 0.5})
	b := New(Config{Seed: 2, Drop: 0.5})
	diff := 0
	for seq := int64(1); seq <= 200; seq++ {
		if a.Dropped(0, 1, seq, 0) != b.Dropped(0, 1, seq, 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical drop schedules")
	}
}

func TestDropRateApproximate(t *testing.T) {
	in := New(Config{Seed: 7, Drop: 0.1})
	dropped := 0
	const n = 20000
	for seq := int64(1); seq <= n; seq++ {
		if in.Dropped(0, 1, seq, 0) {
			dropped++
		}
	}
	rate := float64(dropped) / n
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("drop rate %.3f, want ≈0.1", rate)
	}
}

func TestMaxAttemptsForcesDelivery(t *testing.T) {
	in := New(Config{Seed: 3, Drop: 1.0, MaxAttempts: 4})
	for seq := int64(1); seq <= 100; seq++ {
		if !in.Dropped(0, 1, seq, 0) {
			t.Fatalf("seq %d: Drop=1.0 did not drop attempt 0", seq)
		}
		if in.Dropped(0, 1, seq, 4) {
			t.Fatalf("seq %d: attempt at MaxAttempts was dropped", seq)
		}
	}
}

func TestDelayBounded(t *testing.T) {
	max := 3 * time.Millisecond
	in := New(Config{Seed: 9, MaxDelay: max})
	for seq := int64(1); seq <= 1000; seq++ {
		if d := in.Delay(0, 1, seq, 0); d < 0 || d >= max {
			t.Fatalf("seq %d: delay %v outside [0, %v)", seq, d, max)
		}
	}
}

func TestNilInjectorIsNoFaults(t *testing.T) {
	var in *Injector
	if in.Dropped(0, 1, 1, 0) || in.Duplicated(0, 1, 1) || in.Delay(0, 1, 1, 0) != 0 {
		t.Fatal("nil injector injected a fault")
	}
	if _, ok := in.Crash(0); ok {
		t.Fatal("nil injector scheduled a crash")
	}
	if in.WillRestart(0) || in.AnyCrash() {
		t.Fatal("nil injector reports crashes")
	}
}

func TestCrashSchedule(t *testing.T) {
	in := New(Config{Crashes: []Crash{
		{Agent: 2, AfterSteps: 5, Restart: true},
		{Agent: 3, AfterSteps: 1},
		{Agent: 2, AfterSteps: 9}, // ignored: one crash per agent
	}})
	c, ok := in.Crash(2)
	if !ok || c.AfterSteps != 5 || !c.Restart {
		t.Fatalf("crash for agent 2 = %+v ok=%v", c, ok)
	}
	if c.RestartDelay != DefaultRestartDelay {
		t.Fatalf("default restart delay not applied: %v", c.RestartDelay)
	}
	if !in.WillRestart(2) || in.WillRestart(3) || in.WillRestart(0) {
		t.Fatal("WillRestart wrong")
	}
	if !in.AnyCrash() {
		t.Fatal("AnyCrash false with crashes scheduled")
	}
}

func TestCorruptSchedule(t *testing.T) {
	cfg := Config{Seed: 11, Corrupt: 0.15, MaxAttempts: 4}
	a, b := New(cfg), New(cfg)
	hits := 0
	const n = 20000
	for seq := int64(1); seq <= n; seq++ {
		if a.Corrupted(0, 1, seq, 0) != b.Corrupted(0, 1, seq, 0) {
			t.Fatalf("corrupt decision diverged at seq %d", seq)
		}
		if a.Corrupted(0, 1, seq, 0) {
			hits++
		}
		if a.Corrupted(0, 1, seq, 4) {
			t.Fatalf("seq %d: attempt at MaxAttempts was corrupted", seq)
		}
	}
	rate := float64(hits) / n
	if rate < 0.11 || rate > 0.19 {
		t.Fatalf("corrupt rate %.3f, want ≈0.15", rate)
	}
	// Corruption and drop schedules must be independent streams.
	both := New(Config{Seed: 11, Drop: 0.15, Corrupt: 0.15, MaxAttempts: 4})
	same := 0
	for seq := int64(1); seq <= 200; seq++ {
		if both.Dropped(0, 1, seq, 0) == both.Corrupted(0, 1, seq, 0) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("drop and corrupt schedules are identical")
	}
	var nilIn *Injector
	if nilIn.Corrupted(0, 1, 1, 0) || nilIn.AnyCorrupt() {
		t.Fatal("nil injector corrupts frames")
	}
	if !New(cfg).AnyCorrupt() {
		t.Fatal("AnyCorrupt false with Corrupt set")
	}
}

func TestBackoff(t *testing.T) {
	if Backoff(0) != BackoffBase {
		t.Fatalf("Backoff(0) = %v", Backoff(0))
	}
	prev := time.Duration(0)
	for a := 0; a < 12; a++ {
		d := Backoff(a)
		if d < prev {
			t.Fatalf("backoff not monotone at attempt %d", a)
		}
		if d > BackoffCap {
			t.Fatalf("backoff exceeds cap at attempt %d: %v", a, d)
		}
		prev = d
	}
	if Backoff(20) != BackoffCap {
		t.Fatalf("backoff not capped: %v", Backoff(20))
	}
}

func TestCheckpoints(t *testing.T) {
	c := NewCheckpoints()
	if _, ok := c.Load(0); ok {
		t.Fatal("empty registry returned a checkpoint")
	}
	c.Save(0, "v1")
	c.Save(0, "v2")
	c.Save(1, 7)
	if got, ok := c.Load(0); !ok || got != "v2" {
		t.Fatalf("Load(0) = %v, %v", got, ok)
	}
	if got, ok := c.Load(1); !ok || got != 7 {
		t.Fatalf("Load(1) = %v, %v", got, ok)
	}
	if c.Saves() != 3 {
		t.Fatalf("Saves = %d", c.Saves())
	}
}
