// Chaos suite: every algorithm family must reach its clean-network outcome
// — the same solved/insoluble verdict, with a valid solution when solved —
// under a seeded fault schedule of message drop, duplication, delay, and a
// crash-restart, on both the in-process asynchronous runtime and the TCP
// runtime. The fault schedule is deterministic per seed (hash-keyed
// decisions, independent of goroutine interleaving), so a failure here
// reproduces with its seed.
//
// The suite lives in package faults_test so it can drive internal/async and
// internal/netrun without an import cycle.
package faults_test

import (
	"testing"
	"time"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/async"
	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/netrun"
	"github.com/discsp/discsp/internal/sim"
)

// verdict is the outcome a run must reproduce under chaos.
type verdict struct {
	solved    bool
	insoluble bool
}

type family struct {
	name      string
	problem   func(t *testing.T) *csp.Problem
	makeAgent func(p *csp.Problem) func(csp.Var) sim.Agent
	want      verdict
}

func solvableColoring(seed int64) func(t *testing.T) *csp.Problem {
	return func(t *testing.T) *csp.Problem {
		t.Helper()
		inst, err := gen.Coloring(15, 32, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		return inst.Problem
	}
}

func insolubleK4(t *testing.T) *csp.Problem {
	t.Helper()
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	return p
}

func awcFactory(learning core.Learning, initSeed int64) func(p *csp.Problem) func(csp.Var) sim.Agent {
	return func(p *csp.Problem) func(csp.Var) sim.Agent {
		init := gen.RandomInitial(p, initSeed)
		return func(v csp.Var) sim.Agent { return core.NewAgent(v, p, init[v], learning) }
	}
}

func families() []family {
	return []family{
		{
			name:      "awc-resolvent",
			problem:   solvableColoring(101),
			makeAgent: awcFactory(core.Learning{Kind: core.LearnResolvent}, 11),
			want:      verdict{solved: true},
		},
		{
			name:      "awc-mcs",
			problem:   solvableColoring(102),
			makeAgent: awcFactory(core.Learning{Kind: core.LearnMCS}, 12),
			want:      verdict{solved: true},
		},
		{
			name:    "db",
			problem: solvableColoring(103),
			makeAgent: func(p *csp.Problem) func(csp.Var) sim.Agent {
				init := gen.RandomInitial(p, 13)
				return func(v csp.Var) sim.Agent { return breakout.NewAgent(v, p, init[v]) }
			},
			want: verdict{solved: true},
		},
		{
			name:    "abt-insoluble",
			problem: insolubleK4,
			makeAgent: func(p *csp.Problem) func(csp.Var) sim.Agent {
				return func(v csp.Var) sim.Agent { return abt.NewAgent(v, p, 0) }
			},
			want: verdict{insoluble: true},
		},
	}
}

// chaosConfig is the acceptance schedule: seeded 10% drop, 10% duplication,
// bounded delay, and one crash-restart.
func chaosConfig(seed int64) *faults.Config {
	return &faults.Config{
		Seed:      seed,
		Drop:      0.10,
		Duplicate: 0.10,
		MaxDelay:  time.Millisecond,
		Crashes:   []faults.Crash{{Agent: 2, AfterSteps: 1, Restart: true}},
	}
}

func checkVerdict(t *testing.T, fam family, p *csp.Problem, solved, insoluble bool, assignment csp.SliceAssignment) {
	t.Helper()
	if solved != fam.want.solved || insoluble != fam.want.insoluble {
		t.Fatalf("verdict under chaos {solved:%v insoluble:%v} differs from clean network %+v",
			solved, insoluble, fam.want)
	}
	if solved && !p.IsSolution(assignment) {
		t.Fatalf("solved run produced an invalid assignment %v", assignment)
	}
}

// TestChaosAsync drives every family through the async runtime under the
// acceptance fault schedule, twice per seed: the verdict must match the
// clean-network outcome both times.
func TestChaosAsync(t *testing.T) {
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			p := fam.problem(t)
			for _, seed := range []int64{1, 2} {
				for rep := 0; rep < 2; rep++ {
					res, err := async.Run(p, fam.makeAgent(p), async.Options{
						Timeout: 60 * time.Second,
						Faults:  chaosConfig(seed),
					})
					if err != nil {
						t.Fatalf("seed %d rep %d: %v (res=%+v)", seed, rep, err, res)
					}
					checkVerdict(t, fam, p, res.Solved, res.Insoluble, res.Assignment)
				}
			}
		})
	}
}

// TestChaosNetrun drives every family through the TCP runtime under the
// acceptance fault schedule: drop, duplication, delay, and a node crash
// with checkpoint-restart, all crossing real sockets.
func TestChaosNetrun(t *testing.T) {
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			p := fam.problem(t)
			res, err := netrun.Run(p, fam.makeAgent(p), netrun.Options{
				Timeout: 60 * time.Second,
				Faults:  chaosConfig(1),
			})
			if err != nil {
				t.Fatalf("%v (res=%+v)", err, res)
			}
			checkVerdict(t, fam, p, res.Solved, res.Insoluble, res.Assignment)
			if res.Retransmits == 0 {
				t.Errorf("10%% drop produced no retransmits: %+v", res)
			}
		})
	}
}

// TestChaosDropRateSweep raises the drop rate well past the acceptance
// level; eventual delivery (bounded attempts) must keep AWC solving.
func TestChaosDropRateSweep(t *testing.T) {
	fam := families()[0]
	p := fam.problem(t)
	for _, drop := range []float64{0.05, 0.2, 0.3} {
		res, err := async.Run(p, fam.makeAgent(p), async.Options{
			Timeout: 60 * time.Second,
			Faults:  &faults.Config{Seed: 7, Drop: drop},
		})
		if err != nil {
			t.Fatalf("drop %.2f: %v (res=%+v)", drop, err, res)
		}
		if !res.Solved {
			t.Fatalf("drop %.2f: not solved: %+v", drop, res)
		}
	}
}

// TestChaosCrashPointSweep moves the crash point across the run; the ABT
// insolubility proof must survive a restart wherever it lands (a crash
// point past the run's natural end simply never fires).
func TestChaosCrashPointSweep(t *testing.T) {
	p := insolubleK4(t)
	mk := func(v csp.Var) sim.Agent { return abt.NewAgent(v, p, 0) }
	for _, after := range []int{0, 2, 5} {
		res, err := netrun.Run(p, mk, netrun.Options{
			Timeout: 60 * time.Second,
			Faults: &faults.Config{Seed: 8, Crashes: []faults.Crash{
				{Agent: 1, AfterSteps: after, Restart: true},
			}},
		})
		if err != nil {
			t.Fatalf("crash after %d: %v (res=%+v)", after, err, res)
		}
		if !res.Insoluble {
			t.Fatalf("crash after %d: insolubility not proven: %+v", after, res)
		}
	}
}
