package faults

import (
	"testing"
	"time"
)

// TestPartitionSidesDeterministic pins that sides are a pure function of
// (seed, window, agent): stable across injectors and insensitive to query
// order.
func TestPartitionSidesDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Partitions: []Partition{{At: 0, Dur: time.Second}, {At: 2 * time.Second, Dur: time.Second}}}
	a, b := New(cfg), New(cfg)
	for w := 0; w < 2; w++ {
		for agent := 0; agent < 32; agent++ {
			sa, sb := a.Side(w, agent), b.Side(w, agent)
			if sa != sb {
				t.Fatalf("window %d agent %d: sides differ (%d vs %d)", w, agent, sa, sb)
			}
			if sa != 0 && sa != 1 {
				t.Fatalf("window %d agent %d: side %d out of range", w, agent, sa)
			}
		}
	}
	// Different windows of the same schedule must be able to split
	// differently (independent streams); check the two windows are not
	// forced identical for every agent.
	same := true
	for agent := 0; agent < 32; agent++ {
		if a.Side(0, agent) != a.Side(1, agent) {
			same = false
			break
		}
	}
	if same {
		t.Error("both windows split all 32 agents identically; side streams look correlated")
	}
}

func TestPartitionedAt(t *testing.T) {
	cfg := Config{Seed: 3, Partitions: []Partition{{At: 100 * time.Millisecond, Dur: 200 * time.Millisecond}}}
	in := New(cfg)
	// Find a pair of agents on opposite sides of window 0.
	from, to := -1, -1
	for agent := 1; agent < 64; agent++ {
		if in.Side(0, agent) != in.Side(0, 0) {
			from, to = 0, agent
			break
		}
	}
	if from < 0 {
		t.Fatal("seed 3 put 64 agents on one side; pick another seed")
	}
	if cut, _, _ := in.PartitionedAt(from, to, 50*time.Millisecond); cut {
		t.Error("cut before the window opened")
	}
	cut, heal, heals := in.PartitionedAt(from, to, 150*time.Millisecond)
	if !cut || !heals || heal != 300*time.Millisecond {
		t.Errorf("inside window: cut=%v heal=%v heals=%v", cut, heal, heals)
	}
	if cut, _, _ := in.PartitionedAt(to, from, 150*time.Millisecond); !cut {
		t.Error("cut must be symmetric in link direction")
	}
	if cut, _, _ := in.PartitionedAt(from, to, 300*time.Millisecond); cut {
		t.Error("cut after the window healed")
	}
	// Same-side agents are never cut.
	for agent := 1; agent < 64; agent++ {
		if in.Side(0, agent) == in.Side(0, from) && agent != from {
			if cut, _, _ := in.PartitionedAt(from, agent, 150*time.Millisecond); cut {
				t.Errorf("same-side link %d→%d cut", from, agent)
			}
			break
		}
	}
}

func TestPartitionNeverHeals(t *testing.T) {
	in := New(Config{Seed: 3, Partitions: []Partition{{At: 0}}})
	from, to := -1, -1
	for agent := 1; agent < 64; agent++ {
		if in.Side(0, agent) != in.Side(0, 0) {
			from, to = 0, agent
			break
		}
	}
	if from < 0 {
		t.Fatal("seed 3 put 64 agents on one side; pick another seed")
	}
	cut, _, heals := in.PartitionedAt(from, to, time.Hour)
	if !cut || heals {
		t.Errorf("permanent window at 1h: cut=%v heals=%v; want cut, never healing", cut, heals)
	}
	if got := in.HealedBy(time.Hour); got != 0 {
		t.Errorf("HealedBy counted a permanent window: %d", got)
	}
}

func TestHealedBy(t *testing.T) {
	in := New(Config{Seed: 1, Partitions: []Partition{
		{At: 0, Dur: 100 * time.Millisecond},
		{At: 0, Dur: 500 * time.Millisecond},
		{At: time.Second}, // never heals
	}})
	if got := in.HealedBy(200 * time.Millisecond); got != 1 {
		t.Errorf("HealedBy(200ms) = %d, want 1", got)
	}
	if got := in.HealedBy(time.Minute); got != 2 {
		t.Errorf("HealedBy(1m) = %d, want 2", got)
	}
	var nilIn *Injector
	if nilIn.AnyPartition() || nilIn.HealedBy(time.Hour) != 0 {
		t.Error("nil injector must report no partitions")
	}
	if cut, _, _ := nilIn.PartitionedAt(0, 1, 0); cut {
		t.Error("nil injector cut a link")
	}
}
