// Package faults provides deterministic fault injection for the distributed
// runtimes: a seeded schedule of per-link message drop, duplication, and
// bounded delivery delay, per-agent crash points, and network partition
// windows, pluggable into the asynchronous runtime's delivery queue
// (internal/async) and the TCP hub's route loop (internal/netrun).
//
// Every decision is a pure function of (seed, link, sequence number,
// attempt), computed by hashing rather than by consuming a shared PRNG
// stream, so the fault schedule is independent of goroutine interleaving
// and call order: the same seed yields the same schedule no matter how the
// runtimes race. That is what makes chaos tests reproducible.
//
// The package also carries the crash-recovery substrate: a Checkpoints
// registry standing in for each node's durable storage, which a restarted
// node replays to rejoin a run (see sim.Checkpointer and the runtimes'
// crash handling).
package faults

import (
	"sync"
	"time"

	"github.com/discsp/discsp/internal/backoff"
)

// Config describes one fault schedule.
type Config struct {
	// Seed selects the schedule. Two injectors with equal configs make
	// identical decisions.
	Seed int64
	// Drop is the per-attempt probability of losing one delivery of a
	// message. Retransmissions are fresh attempts, so a message's loss
	// probability after k attempts is Drop^k; MaxAttempts bounds the streak.
	Drop float64
	// Duplicate is the per-message probability of delivering one extra copy.
	Duplicate float64
	// Corrupt is the per-attempt probability of delivering one copy of a
	// message with its payload bit-flipped instead of intact. On connections
	// that negotiated the CRC32C trailer the receiver detects and drops the
	// frame (counting it); elsewhere the corruption degrades to a drop —
	// either way the retransmit machinery recovers, and MaxAttempts bounds
	// the streak exactly like Drop.
	Corrupt float64
	// MaxDelay bounds the extra delivery delay injected per copy; each copy
	// is delayed by a deterministic duration in [0, MaxDelay). Zero injects
	// no delay.
	MaxDelay time.Duration
	// MaxAttempts caps consecutive drops of one message: attempt numbers at
	// or beyond it are never dropped, so every message is eventually
	// deliverable. 0 means DefaultMaxAttempts.
	MaxAttempts int
	// Crashes schedules at most one crash per agent (later entries for the
	// same agent are ignored).
	Crashes []Crash
	// Partitions schedules network partition windows. During a window the
	// agents are split into two sides — each agent's side is a pure function
	// of (Seed, window index, agent) — and messages crossing the cut are
	// withheld until the window heals, then drained. See Partition.
	Partitions []Partition
}

// Partition is one network partition window, measured as offsets from the
// run's start. While the window is open, every link between agents hashed
// to different sides is cut: the runtimes withhold crossing traffic (the
// reliable transport keeps retransmitting underneath) and drain it when the
// window heals. A window with Dur <= 0 never heals; runs that need the cut
// links then end at the stall watchdog, not at quiescence.
type Partition struct {
	// At is the window's start, as an offset from the run's start.
	At time.Duration
	// Dur is the window's length; the partition heals at At+Dur. Dur <= 0
	// marks a permanent partition that never heals.
	Dur time.Duration
}

// Crash schedules one node failure.
type Crash struct {
	// Agent is the crashing agent's id (= variable).
	Agent int
	// AfterSteps is the number of message-processing steps the agent
	// completes before the crash: the crash fires when the next batch
	// arrives, losing that delivery (the transport redelivers it).
	AfterSteps int
	// Restart makes the node rejoin after RestartDelay, restored from its
	// last checkpoint. A non-restarting crash kills the node for good.
	Restart bool
	// RestartDelay is the downtime before rejoining; 0 means
	// DefaultRestartDelay.
	RestartDelay time.Duration
}

// DefaultMaxAttempts is the drop-streak cap when Config.MaxAttempts is 0.
const DefaultMaxAttempts = 8

// DefaultRestartDelay is the downtime when Crash.RestartDelay is 0.
const DefaultRestartDelay = 5 * time.Millisecond

// Backoff bounds for retransmission scheduling; shared by the netrun node
// transport and the async runtime's loss model so both recover on the same
// curve.
const (
	// BackoffBase is the delay before the first retransmission.
	BackoffBase = 2 * time.Millisecond
	// BackoffCap is the retransmission delay ceiling.
	BackoffCap = 64 * time.Millisecond
)

// Backoff returns the exponential retransmission delay after attempt
// consecutive failures: BackoffBase << attempt, capped at BackoffCap.
func Backoff(attempt int) time.Duration {
	return backoff.Policy{Base: BackoffBase, Cap: BackoffCap}.Delay(attempt)
}

// Injector answers fault-schedule queries. A nil *Injector is a valid
// no-fault schedule, so runtimes can hold one unconditionally.
type Injector struct {
	cfg     Config
	crashes map[int]Crash
}

// New builds the injector for cfg.
func New(cfg Config) *Injector {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	in := &Injector{cfg: cfg, crashes: make(map[int]Crash, len(cfg.Crashes))}
	for _, c := range cfg.Crashes {
		if c.RestartDelay <= 0 {
			c.RestartDelay = DefaultRestartDelay
		}
		if _, dup := in.crashes[c.Agent]; !dup {
			in.crashes[c.Agent] = c
		}
	}
	return in
}

// Dropped reports whether the attempt-th delivery of message seq on the
// from→to link is lost. Attempts at or beyond MaxAttempts always get
// through.
func (in *Injector) Dropped(from, to int, seq int64, attempt int) bool {
	if in == nil || in.cfg.Drop <= 0 || attempt >= in.cfg.MaxAttempts {
		return false
	}
	return in.rand01(from, to, seq, int64(attempt), saltDrop) < in.cfg.Drop
}

// Corrupted reports whether the attempt-th delivery of message seq on the
// from→to link has its payload damaged in flight. Attempts at or beyond
// MaxAttempts are never corrupted, so every message eventually arrives
// intact.
func (in *Injector) Corrupted(from, to int, seq int64, attempt int) bool {
	if in == nil || in.cfg.Corrupt <= 0 || attempt >= in.cfg.MaxAttempts {
		return false
	}
	return in.rand01(from, to, seq, int64(attempt), saltCorrupt) < in.cfg.Corrupt
}

// AnyCorrupt reports whether the schedule can corrupt frames at all.
func (in *Injector) AnyCorrupt() bool { return in != nil && in.cfg.Corrupt > 0 }

// Duplicated reports whether message seq on the from→to link is delivered
// twice.
func (in *Injector) Duplicated(from, to int, seq int64) bool {
	if in == nil || in.cfg.Duplicate <= 0 {
		return false
	}
	return in.rand01(from, to, seq, 0, saltDup) < in.cfg.Duplicate
}

// Delay returns the injected extra delivery delay of the copy-th copy of
// message seq on the from→to link, in [0, MaxDelay).
func (in *Injector) Delay(from, to int, seq int64, copy int) time.Duration {
	if in == nil || in.cfg.MaxDelay <= 0 {
		return 0
	}
	f := in.rand01(from, to, seq, int64(copy), saltDelay)
	return time.Duration(f * float64(in.cfg.MaxDelay))
}

// Crash returns the crash scheduled for agent, if any.
func (in *Injector) Crash(agent int) (Crash, bool) {
	if in == nil {
		return Crash{}, false
	}
	c, ok := in.crashes[agent]
	return c, ok
}

// WillRestart reports whether agent is scheduled to rejoin after crashing.
// Runtimes use it to tell a transient failure (keep queueing, await the
// re-register) from a permanent one (fail the run fast).
func (in *Injector) WillRestart(agent int) bool {
	c, ok := in.Crash(agent)
	return ok && c.Restart
}

// AnyCrash reports whether any crash is scheduled.
func (in *Injector) AnyCrash() bool { return in != nil && len(in.crashes) > 0 }

// AnyPartition reports whether any partition window is scheduled.
func (in *Injector) AnyPartition() bool { return in != nil && len(in.cfg.Partitions) > 0 }

// Partitions returns the scheduled partition windows.
func (in *Injector) Partitions() []Partition {
	if in == nil {
		return nil
	}
	return in.cfg.Partitions
}

// Side returns agent's side (0 or 1) of partition window w. Sides are a
// pure function of (Seed, w, agent): the same seed splits the agents the
// same way no matter which runtime asks, or when.
func (in *Injector) Side(w, agent int) int {
	h := splitmix64(uint64(in.cfg.Seed) ^ saltSide)
	h = splitmix64(h ^ uint64(w)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(agent)*0xc2b2ae3d27d4eb4f)
	return int(h & 1)
}

// PartitionedAt reports whether the from→to link is cut at offset at from
// the run's start. When cut, heal is the offset at which the covering
// window heals and drained traffic flows again; heals=false marks a
// permanent window (the link never recovers). Overlapping windows resolve
// to the earliest configured one covering at that actually cuts the link.
func (in *Injector) PartitionedAt(from, to int, at time.Duration) (cut bool, heal time.Duration, heals bool) {
	if in == nil {
		return false, 0, false
	}
	for w, p := range in.cfg.Partitions {
		if at < p.At {
			continue
		}
		if p.Dur > 0 && at >= p.At+p.Dur {
			continue
		}
		if in.Side(w, from) == in.Side(w, to) {
			continue
		}
		if p.Dur <= 0 {
			return true, 0, false
		}
		return true, p.At + p.Dur, true
	}
	return false, 0, false
}

// HealedBy returns how many scheduled partition windows healed within
// elapsed: the heal count a finished run reports.
func (in *Injector) HealedBy(elapsed time.Duration) int64 {
	if in == nil {
		return 0
	}
	var n int64
	for _, p := range in.cfg.Partitions {
		if p.Dur > 0 && p.At+p.Dur <= elapsed {
			n++
		}
	}
	return n
}

// decision salts keep the drop, duplicate, delay, and partition-side
// streams independent.
const (
	saltDrop    = 0x9e3779b97f4a7c15
	saltDup     = 0xc2b2ae3d27d4eb4f
	saltDelay   = 0x165667b19e3779f9
	saltSide    = 0x27d4eb2f165667c5
	saltCorrupt = 0x85ebca77c2b2ae63
)

// rand01 hashes the decision coordinates into [0, 1).
func (in *Injector) rand01(from, to int, seq, extra int64, salt uint64) float64 {
	h := splitmix64(uint64(in.cfg.Seed) ^ salt)
	h = splitmix64(h ^ uint64(from)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(to)*0xc2b2ae3d27d4eb4f)
	h = splitmix64(h ^ uint64(seq))
	h = splitmix64(h ^ uint64(extra))
	return float64(h>>11) / float64(1<<53)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Checkpoints is the in-memory stand-in for per-node durable storage: nodes
// save their checkpoint after every processed step, and a restarted node
// loads the latest to rejoin the run. Snapshots are written before their
// effects are acknowledged, so recovery never loses acknowledged state.
type Checkpoints struct {
	mu    sync.Mutex
	m     map[int]any
	saves int64
}

// NewCheckpoints returns an empty registry.
func NewCheckpoints() *Checkpoints {
	return &Checkpoints{m: make(map[int]any)}
}

// Save durably records agent's checkpoint, replacing any previous one.
func (c *Checkpoints) Save(agent int, snapshot any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[agent] = snapshot
	c.saves++
}

// Load returns agent's latest checkpoint.
func (c *Checkpoints) Load(agent int) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[agent]
	return s, ok
}

// Saves returns the total number of Save calls (for tests).
func (c *Checkpoints) Saves() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saves
}
