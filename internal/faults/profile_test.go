package faults

import (
	"testing"
	"time"
)

func TestParseProfile(t *testing.T) {
	cfg, err := ParseProfile("drop=0.2,dup=0.1,corrupt=0.05,delay=2ms,attempts=5,crash=3@2r20ms,partition=50ms+200ms,partition=1s+never", 42)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.Drop != 0.2 || cfg.Duplicate != 0.1 || cfg.Corrupt != 0.05 ||
		cfg.MaxDelay != 2*time.Millisecond || cfg.MaxAttempts != 5 {
		t.Fatalf("scalar fields wrong: %+v", cfg)
	}
	if len(cfg.Crashes) != 1 {
		t.Fatalf("crashes = %+v", cfg.Crashes)
	}
	c := cfg.Crashes[0]
	if c.Agent != 3 || c.AfterSteps != 2 || !c.Restart || c.RestartDelay != 20*time.Millisecond {
		t.Fatalf("crash = %+v", c)
	}
	if len(cfg.Partitions) != 2 {
		t.Fatalf("partitions = %+v", cfg.Partitions)
	}
	if p := cfg.Partitions[0]; p.At != 50*time.Millisecond || p.Dur != 200*time.Millisecond {
		t.Fatalf("partition 0 = %+v", p)
	}
	if p := cfg.Partitions[1]; p.At != time.Second || p.Dur != 0 {
		t.Fatalf("never-healing partition = %+v", p)
	}
}

func TestParseProfileCrashForms(t *testing.T) {
	cfg, err := ParseProfile("crash=0@4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := cfg.Crashes[0]; c.Agent != 0 || c.AfterSteps != 4 || c.Restart {
		t.Fatalf("crash = %+v", c)
	}
	cfg, err = ParseProfile("crash=1@0r", 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := cfg.Crashes[0]; !c.Restart || c.RestartDelay != 0 {
		t.Fatalf("crash = %+v (RestartDelay should default at New)", c)
	}
}

func TestParseProfilePreset(t *testing.T) {
	cfg, err := ParseProfile("chaos", 7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Drop != 0.10 || cfg.Duplicate != 0.10 || len(cfg.Crashes) != 1 {
		t.Fatalf("chaos preset = %+v", cfg)
	}
}

func TestParseProfileEmpty(t *testing.T) {
	cfg, err := ParseProfile("  ", 1)
	if err != nil || cfg != nil {
		t.Fatalf("empty profile = %+v, %v; want nil, nil", cfg, err)
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, bad := range []string{
		"drop=1.5", "drop=x", "dup=-0.1", "delay=-2ms", "delay=bogus",
		"attempts=0", "crash=5", "crash=x@1", "crash=1@-2", "crash=1@1rxx",
		"partition=50ms", "partition=x+1s", "partition=1s+-5ms",
		"nonsense", "wat=1",
	} {
		if _, err := ParseProfile(bad, 1); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
}
