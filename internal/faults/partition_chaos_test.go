// Partition chaos: every algorithm family must reach its clean-network
// verdict on both network runtimes while a partition window cuts the agent
// population in two and later heals, and a partition that never heals must
// end at the stall watchdog with a per-agent progress report — not a bare
// timeout. The CHAOS_LONG-gated sweeps at the bottom widen the schedules
// for the nightly CI job.
package faults_test

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/async"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/netrun"
	"github.com/discsp/discsp/internal/progress"
	"github.com/discsp/discsp/internal/sim"
)

// healingConfig is the acceptance schedule for partition tolerance: modest
// drop and duplication underneath a partition window that opens at the
// start of the run and heals 120ms in.
func healingConfig(seed int64) *faults.Config {
	return &faults.Config{
		Seed:      seed,
		Drop:      0.05,
		Duplicate: 0.05,
		Partitions: []faults.Partition{
			{At: 0, Dur: 120 * time.Millisecond},
		},
	}
}

// splitsNontrivially reports whether window w of cfg's schedule puts at
// least one of n agents on each side. Sides are a pure function of the
// seed, so the check is deterministic.
func splitsNontrivially(cfg *faults.Config, w, n int) bool {
	inj := faults.New(*cfg)
	zeros := 0
	for a := 0; a < n; a++ {
		if inj.Side(w, a) == 0 {
			zeros++
		}
	}
	return zeros > 0 && zeros < n
}

// splittingSeed returns the first seed in [1, 64] whose window-0 sides
// split n agents nontrivially. Some seed in that range always does (each
// fails with probability 2^-(n-1)); the scan keeps the tests independent
// of the hash function's details.
func splittingSeed(t *testing.T, mk func(seed int64) *faults.Config, n int) int64 {
	t.Helper()
	for seed := int64(1); seed <= 64; seed++ {
		if splitsNontrivially(mk(seed), 0, n) {
			return seed
		}
	}
	t.Fatal("no seed in [1,64] splits the agents; side hash broken")
	return 0
}

// TestPartitionHealAsync drives every family through the async runtime
// under a healing partition window: the verdict must match the clean
// network's, and when the window splits the population nontrivially the
// run must actually have had deliveries cut and the window counted healed.
func TestPartitionHealAsync(t *testing.T) {
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			p := fam.problem(t)
			seed := splittingSeed(t, healingConfig, p.NumVars())
			cfg := healingConfig(seed)
			res, err := async.Run(p, fam.makeAgent(p), async.Options{
				Timeout: 60 * time.Second,
				Faults:  cfg,
			})
			if err != nil {
				t.Fatalf("seed %d: %v (res=%+v)", seed, err, res)
			}
			checkVerdict(t, fam, p, res.Solved, res.Insoluble, res.Assignment)
			if res.Partitioned == 0 {
				t.Errorf("seed %d: nontrivial window cut no deliveries: %+v", seed, res)
			}
			if res.PartitionHeals != 1 {
				t.Errorf("seed %d: want 1 healed window, got %d", seed, res.PartitionHeals)
			}
		})
	}
}

// TestPartitionHealNetrun is TestPartitionHealAsync across real sockets:
// the hub parks crossing frames and drains them at heal.
func TestPartitionHealNetrun(t *testing.T) {
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			p := fam.problem(t)
			seed := splittingSeed(t, healingConfig, p.NumVars())
			cfg := healingConfig(seed)
			res, err := netrun.Run(p, fam.makeAgent(p), netrun.Options{
				Timeout: 60 * time.Second,
				Faults:  cfg,
			})
			if err != nil {
				t.Fatalf("seed %d: %v (res=%+v)", seed, err, res)
			}
			checkVerdict(t, fam, p, res.Solved, res.Insoluble, res.Assignment)
			if res.Partitioned == 0 {
				t.Errorf("seed %d: nontrivial window parked no frames: %+v", seed, res)
			}
			if res.PartitionHeals != 1 {
				t.Errorf("seed %d: want 1 healed window, got %d", seed, res.PartitionHeals)
			}
		})
	}
}

func neverHealConfig(seed int64) *faults.Config {
	return &faults.Config{
		Seed:       seed,
		Partitions: []faults.Partition{{At: 0}}, // Dur <= 0: never heals
	}
}

// checkStallReport asserts a never-healing partition produced a watchdog
// verdict, not a bare timeout: a per-agent progress report attached to the
// error, classified as stuck, and rendered into the error text.
func checkStallReport(t *testing.T, r *progress.Report, errText string, n int) {
	t.Helper()
	if r == nil {
		t.Fatal("timeout carries no progress report")
	}
	if r.State == progress.StateConverging || r.State == progress.StateUnknown {
		t.Errorf("permanent partition classified %q, want stalled or livelock", r.State)
	}
	if len(r.Agents) != n {
		t.Errorf("report covers %d agents, want %d", len(r.Agents), n)
	}
	if !strings.Contains(errText, "agents") {
		t.Errorf("error text lacks the per-agent report: %q", errText)
	}
}

// TestPartitionNeverHealsAsync pins the watchdog path: the ABT
// insolubility proof needs nogood traffic across the whole population, so
// a permanent cut stalls it and the deadline must surface a classified
// per-agent progress report.
func TestPartitionNeverHealsAsync(t *testing.T) {
	t.Parallel()
	p := insolubleK4(t)
	seed := splittingSeed(t, neverHealConfig, p.NumVars())
	mk := func(v csp.Var) sim.Agent { return abt.NewAgent(v, p, 0) }
	_, err := async.Run(p, mk, async.Options{
		Timeout: 3 * time.Second,
		Faults:  neverHealConfig(seed),
	})
	var te *async.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *async.TimeoutError, got %v", err)
	}
	checkStallReport(t, te.Report, te.Error(), p.NumVars())
}

// TestPartitionNeverHealsNetrun is the same stall across real sockets: the
// hub kills crossing frames for good, the nodes retransmit into the void,
// and the deadline must carry the watchdog's report.
func TestPartitionNeverHealsNetrun(t *testing.T) {
	t.Parallel()
	p := insolubleK4(t)
	seed := splittingSeed(t, neverHealConfig, p.NumVars())
	mk := func(v csp.Var) sim.Agent { return abt.NewAgent(v, p, 0) }
	_, err := netrun.Run(p, mk, netrun.Options{
		Timeout: 3 * time.Second,
		Faults:  neverHealConfig(seed),
	})
	var te *netrun.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *netrun.TimeoutError, got %v", err)
	}
	checkStallReport(t, te.Report, te.Error(), p.NumVars())
}

// overlapConfig layers a crash-restart inside a healing partition window:
// the restarted node recovers from its checkpoint while half its links are
// still cut, then the drained traffic catches it up.
func overlapConfig(seed int64) *faults.Config {
	return &faults.Config{
		Seed:      seed,
		Drop:      0.05,
		Duplicate: 0.05,
		Partitions: []faults.Partition{
			{At: 0, Dur: 100 * time.Millisecond},
		},
		Crashes: []faults.Crash{
			{Agent: 2, AfterSteps: 1, Restart: true},
		},
	}
}

// TestPartitionOverlapsCrashAsync runs every family with a crash-restart
// inside the partition window on the async runtime.
func TestPartitionOverlapsCrashAsync(t *testing.T) {
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			p := fam.problem(t)
			seed := splittingSeed(t, overlapConfig, p.NumVars())
			res, err := async.Run(p, fam.makeAgent(p), async.Options{
				Timeout: 60 * time.Second,
				Faults:  overlapConfig(seed),
			})
			if err != nil {
				t.Fatalf("seed %d: %v (res=%+v)", seed, err, res)
			}
			checkVerdict(t, fam, p, res.Solved, res.Insoluble, res.Assignment)
		})
	}
}

// TestPartitionOverlapsCrashNetrun runs the overlap schedule across real
// sockets: the crashed node's checkpoint restart and the hub's parked
// frames interact, and the verdict must still match the clean network.
func TestPartitionOverlapsCrashNetrun(t *testing.T) {
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			p := fam.problem(t)
			seed := splittingSeed(t, overlapConfig, p.NumVars())
			res, err := netrun.Run(p, fam.makeAgent(p), netrun.Options{
				Timeout: 60 * time.Second,
				Faults:  overlapConfig(seed),
			})
			if err != nil {
				t.Fatalf("seed %d: %v (res=%+v)", seed, err, res)
			}
			checkVerdict(t, fam, p, res.Solved, res.Insoluble, res.Assignment)
		})
	}
}

// chaosLong skips unless the CHAOS_LONG environment variable is set (the
// nightly CI job and `make chaos CHAOS_LONG=1` set it).
func chaosLong(t *testing.T) {
	t.Helper()
	if os.Getenv("CHAOS_LONG") == "" {
		t.Skip("long chaos sweep; set CHAOS_LONG=1 to run")
	}
}

// TestChaosLongAsync is the nightly sweep: every family × several seeds ×
// partition-plus-crash schedules on the async runtime.
func TestChaosLongAsync(t *testing.T) {
	chaosLong(t)
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			p := fam.problem(t)
			for seed := int64(1); seed <= 6; seed++ {
				for _, mk := range []func(int64) *faults.Config{chaosConfig, healingConfig, overlapConfig} {
					res, err := async.Run(p, fam.makeAgent(p), async.Options{
						Timeout: 120 * time.Second,
						Faults:  mk(seed),
					})
					if err != nil {
						t.Fatalf("seed %d cfg %+v: %v (res=%+v)", seed, mk(seed), err, res)
					}
					checkVerdict(t, fam, p, res.Solved, res.Insoluble, res.Assignment)
				}
			}
		})
	}
}

// TestChaosLongNetrun is the nightly sweep across real sockets; fewer
// seeds than the async sweep because every run boots a TCP hub.
func TestChaosLongNetrun(t *testing.T) {
	chaosLong(t)
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			p := fam.problem(t)
			for seed := int64(1); seed <= 3; seed++ {
				for _, mk := range []func(int64) *faults.Config{chaosConfig, healingConfig, overlapConfig} {
					res, err := netrun.Run(p, fam.makeAgent(p), netrun.Options{
						Timeout: 120 * time.Second,
						Faults:  mk(seed),
					})
					if err != nil {
						t.Fatalf("seed %d cfg %+v: %v (res=%+v)", seed, mk(seed), err, res)
					}
					checkVerdict(t, fam, p, res.Solved, res.Insoluble, res.Assignment)
				}
			}
		})
	}
}
