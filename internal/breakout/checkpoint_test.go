package breakout

import (
	"reflect"
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

func TestCheckpointRoundTrip(t *testing.T) {
	// A 2-colorable triangle is insoluble, so DB keeps cycling through
	// waves and weight bumps — every protocol phase gets exercised.
	p := csp.NewProblemUniform(3, 2)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, cycles := range []int{1, 2, 3, 6} {
		agents := make([]*Agent, 3)
		simAgents := make([]sim.Agent, 3)
		for v := range agents {
			agents[v] = NewAgent(csp.Var(v), p, 0)
			simAgents[v] = agents[v]
		}
		if _, err := sim.Run(p, simAgents, sim.Options{MaxCycles: cycles}); err != nil {
			t.Fatal(err)
		}
		for v, a := range agents {
			cp := a.Checkpoint()
			fresh := NewAgent(csp.Var(v), p, 0)
			if err := fresh.Restore(cp); err != nil {
				t.Fatalf("cycles %d agent %d: restore: %v", cycles, v, err)
			}
			if got := fresh.Checkpoint(); !reflect.DeepEqual(got, cp) {
				t.Fatalf("cycles %d agent %d: restored checkpoint differs:\n got %+v\nwant %+v", cycles, v, got, cp)
			}
			// Feed a full ok? wave to both; mid-wave state must carry over.
			var batch []sim.Message
			for _, nb := range p.Neighbors(csp.Var(v)) {
				batch = append(batch, Ok{Sender: sim.AgentID(nb), Receiver: sim.AgentID(v), Value: 1})
			}
			if out1, out2 := a.Step(batch), fresh.Step(batch); !reflect.DeepEqual(out1, out2) {
				t.Fatalf("cycles %d agent %d: restored agent diverged on next step", cycles, v)
			}
			if !reflect.DeepEqual(fresh.Checkpoint(), a.Checkpoint()) {
				t.Fatalf("cycles %d agent %d: state diverged after identical step", cycles, v)
			}
		}
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	p := csp.NewProblemUniform(2, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	a := NewAgent(0, p, 0)
	if err := a.Restore("nope"); err == nil {
		t.Fatal("restore accepted a foreign snapshot")
	}
	good := a.Checkpoint().(*Snapshot)
	bad := *good
	bad.Mode = 99
	if err := a.Restore(&bad); err == nil {
		t.Fatal("restore accepted an invalid mode")
	}
	bad = *good
	bad.Weights = []int{1, 2, 3, 4, 5, 6, 7}
	if err := a.Restore(&bad); err == nil {
		t.Fatal("restore accepted mismatched weights")
	}
}
