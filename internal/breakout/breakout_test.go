package breakout

import (
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

// pathProblem: 0 - 1 - 2 not-equal chain over {0,1}.
func pathProblem(t *testing.T) *csp.Problem {
	t.Helper()
	p := csp.NewProblemUniform(3, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNotEqual(1, 2); err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, p *csp.Problem, initial csp.SliceAssignment, maxCycles int) (sim.Result, []*Agent) {
	t.Helper()
	agents := make([]sim.Agent, p.NumVars())
	dbAgents := make([]*Agent, p.NumVars())
	for v := 0; v < p.NumVars(); v++ {
		a := NewAgent(csp.Var(v), p, initial[v])
		agents[v] = a
		dbAgents[v] = a
	}
	res, err := sim.Run(p, agents, sim.Options{MaxCycles: maxCycles})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, dbAgents
}

func TestDBSolvesPath(t *testing.T) {
	p := pathProblem(t)
	res, _ := run(t, p, csp.SliceAssignment{0, 0, 0}, 200)
	if !res.Solved {
		t.Fatalf("DB did not solve the path problem: %+v", res)
	}
	if !p.IsSolution(res.Assignment) {
		t.Fatalf("assignment %v is not a solution", res.Assignment)
	}
}

func TestDBAlternatesWaves(t *testing.T) {
	// A full move round is ok? wave + improve wave = 2 cycles, so any
	// solved run from a violated start takes an even number ≥ 2... the
	// solution check happens after every cycle, and a move lands at the
	// end of an improve-processing cycle (wave 2), i.e. on even cycles.
	p := pathProblem(t)
	res, _ := run(t, p, csp.SliceAssignment{0, 0, 1}, 200)
	if !res.Solved {
		t.Fatalf("not solved")
	}
	if res.Cycles%2 != 0 {
		t.Errorf("solved on odd cycle %d; moves land on improve cycles", res.Cycles)
	}
}

func TestDBOnlyLocalMaximumMoves(t *testing.T) {
	// Star: center 0 conflicts with leaves 1 and 2 (all value 0). The
	// center's improve (fixing 2 violations) beats the leaves' (1 each),
	// so after one round exactly the center has moved.
	p := csp.NewProblemUniform(3, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNotEqual(0, 2); err != nil {
		t.Fatal(err)
	}
	res, agents := run(t, p, csp.SliceAssignment{0, 0, 0}, 200)
	if !res.Solved {
		t.Fatalf("not solved")
	}
	if got := agents[0].Stats().Moves; got != 1 {
		t.Errorf("center moves = %d, want 1", got)
	}
	if agents[1].Stats().Moves != 0 || agents[2].Stats().Moves != 0 {
		t.Errorf("leaves moved: %d, %d", agents[1].Stats().Moves, agents[2].Stats().Moves)
	}
	if v, _ := res.Assignment.Lookup(0); v != 1 {
		t.Errorf("center value = %d, want 1", v)
	}
}

func TestDBTieBrokenBySmallerID(t *testing.T) {
	// Two agents in conflict with equal improve: the smaller id wins the
	// right to change.
	p := csp.NewProblemUniform(2, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	res, agents := run(t, p, csp.SliceAssignment{1, 1}, 200)
	if !res.Solved {
		t.Fatalf("not solved")
	}
	if agents[0].Stats().Moves != 1 || agents[1].Stats().Moves != 0 {
		t.Errorf("moves = %d,%d; want agent 0 to win the tie",
			agents[0].Stats().Moves, agents[1].Stats().Moves)
	}
}

func TestDBBreaksOutOfQuasiLocalMinimum(t *testing.T) {
	// A triangle over two values is insoluble, so DB must detect
	// quasi-local-minima and raise weights (it can never solve it; run a
	// few cycles and inspect the weight dynamics).
	p := csp.NewProblemUniform(3, 2)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, agents := run(t, p, csp.SliceAssignment{0, 0, 0}, 40)
	if res.Solved {
		t.Fatalf("solved an insoluble problem")
	}
	totalQLM := int64(0)
	totalWeightBumps := int64(0)
	for _, a := range agents {
		totalQLM += a.Stats().QuasiLocalMinima
		totalWeightBumps += a.Stats().WeightIncreases
	}
	if totalQLM == 0 {
		t.Errorf("no quasi-local-minima detected on an insoluble triangle")
	}
	if totalWeightBumps == 0 {
		t.Errorf("no weights increased")
	}
	bumped := false
	for _, a := range agents {
		for i := 0; i < len(p.NogoodsOf(a.id)); i++ {
			if a.Weight(i) > 1 {
				bumped = true
			}
		}
	}
	if !bumped {
		t.Errorf("all weights still 1")
	}
}

func TestDBInitRepairsUnaryConstraints(t *testing.T) {
	p := csp.NewProblemUniform(1, 2)
	if err := p.AddNogood(csp.MustNogood(csp.Lit{Var: 0, Val: 0})); err != nil {
		t.Fatal(err)
	}
	a := NewAgent(0, p, 0)
	a.Init()
	if a.CurrentValue() != 1 {
		t.Errorf("Init kept unary-violated value %d", a.CurrentValue())
	}
}

func TestDBSolvesColoringInstances(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		inst, err := gen.Coloring(24, 64, 3, seed)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		init := gen.RandomInitial(inst.Problem, seed+100)
		res, _ := run(t, inst.Problem, init, 10000)
		if !res.Solved {
			t.Errorf("seed %d: DB failed within 10000 cycles", seed)
		}
	}
}

func TestDBChecksAccounting(t *testing.T) {
	p := pathProblem(t)
	res, agents := run(t, p, csp.SliceAssignment{0, 0, 0}, 200)
	if !res.Solved {
		t.Fatalf("not solved")
	}
	var total int64
	for _, a := range agents {
		total += a.Checks()
	}
	if total == 0 {
		t.Errorf("no nogood checks charged")
	}
	if res.TotalChecks != total {
		t.Errorf("TotalChecks = %d, agents sum = %d", res.TotalChecks, total)
	}
	if res.MaxCCK <= 0 || res.MaxCCK > total {
		t.Errorf("MaxCCK = %d out of range (total %d)", res.MaxCCK, total)
	}
}
