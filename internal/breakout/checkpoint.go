package breakout

import (
	"fmt"
	"sort"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

// Snapshot is a DB agent's durable state for crash-restart recovery. DB is
// a wave protocol, so beyond value and weights the snapshot carries the
// protocol phase (mode, pending ok?/improve counts) — a restored agent must
// resume mid-wave exactly where the checkpoint left it or the alternating
// waves deadlock.
type Snapshot struct {
	Value csp.Value
	// Weights mirror the agent's per-nogood weights (paper footnote 7).
	Weights []int
	Checks  int64
	// Mode is the wave phase: 1 = waiting for ok? messages, 2 = waiting for
	// improve messages.
	Mode      int
	MyImprove int
	MyEval    int
	BestValue csp.Value
	// Oks counts ok? messages received in the current wave.
	Oks int
	// ImproveVars/ImproveVals are the improve messages received in the
	// current wave, sorted by variable.
	ImproveVars []csp.Var
	ImproveVals []int
	// ViewVars/ViewVals are the neighbors' last-known values, sorted.
	ViewVars []csp.Var
	ViewVals []csp.Value
	Stats    Stats
}

var _ sim.Checkpointer = (*Agent)(nil)

// Checkpoint implements sim.Checkpointer.
func (a *Agent) Checkpoint() any {
	s := &Snapshot{
		Value:     a.value,
		Weights:   append([]int(nil), a.weights...),
		Checks:    a.counter.Total(),
		Mode:      int(a.mode),
		MyImprove: a.myImprove,
		MyEval:    a.myEval,
		BestValue: a.bestValue,
		Oks:       a.oks,
		Stats:     a.stats,
	}
	vars := make([]csp.Var, 0, len(a.improves))
	for v := range a.improves {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for _, v := range vars {
		s.ImproveVars = append(s.ImproveVars, v)
		s.ImproveVals = append(s.ImproveVals, a.improves[v])
	}
	for v := 0; v < a.dv.Len(); v++ {
		if csp.Var(v) == a.id || !a.dv.Known(csp.Var(v)) {
			continue
		}
		val, _ := a.dv.Lookup(csp.Var(v))
		s.ViewVars = append(s.ViewVars, csp.Var(v))
		s.ViewVals = append(s.ViewVals, val)
	}
	return s
}

// Restore implements sim.Checkpointer.
func (a *Agent) Restore(snapshot any) error {
	s, ok := snapshot.(*Snapshot)
	if !ok {
		return fmt.Errorf("breakout: cannot restore %T into a DB agent", snapshot)
	}
	if len(s.Weights) != len(a.weights) {
		return fmt.Errorf("breakout: snapshot has %d weights for %d nogoods", len(s.Weights), len(a.weights))
	}
	if s.Mode != int(waitOk) && s.Mode != int(waitImprove) {
		return fmt.Errorf("breakout: corrupt snapshot: mode %d", s.Mode)
	}
	if len(s.ImproveVars) != len(s.ImproveVals) || len(s.ViewVars) != len(s.ViewVals) {
		return fmt.Errorf("breakout: corrupt snapshot: slices of unequal length")
	}
	a.value = s.Value
	copy(a.weights, s.Weights)
	a.counter.Restore(s.Checks)
	a.mode = mode(s.Mode)
	a.myImprove = s.MyImprove
	a.myEval = s.MyEval
	a.bestValue = s.BestValue
	a.oks = s.Oks
	a.stats = s.Stats
	a.improves = make(map[csp.Var]int, len(s.ImproveVars))
	for i, v := range s.ImproveVars {
		a.improves[v] = s.ImproveVals[i]
	}
	a.dv.Reset()
	for i, v := range s.ViewVars {
		a.dv.Assign(v, s.ViewVals[i])
	}
	a.dv.Assign(a.id, a.value)
	return nil
}
