// Package breakout implements the distributed breakout algorithm (DB) of
// Yokoo & Hirayama (ICMAS-96), the baseline of Section 4.3: concurrent
// weighted hill-climbing in which neighbors exchange ok? and improve
// messages in alternating waves, only the agent with the locally maximal
// possible improvement moves, and agents trapped in a quasi-local-minimum
// escape by increasing the weights of their violated constraints (Morris's
// breakout strategy).
//
// Per the paper's footnote 7, weights are attached to individual nogoods
// (not to variable pairs); the authors report this variant performs better
// and it is the one their Tables 8–10 use.
package breakout

import (
	"fmt"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
)

// Ok carries the sender's current value.
type Ok struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	Value    csp.Value
	// TID is the message's causal trace ID; zero when tracing is off.
	TID causal.ID
}

// From implements sim.Message.
func (m Ok) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m Ok) To() sim.AgentID { return m.Receiver }

// CausalID implements causal.Traced.
func (m Ok) CausalID() causal.ID { return m.TID }

// WithCausalID implements causal.Traced.
func (m Ok) WithCausalID(id causal.ID) any { m.TID = id; return m }

// Improve carries the sender's possible improvement and current cost.
type Improve struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	Improve  int
	Eval     int
	// TID is the message's causal trace ID; zero when tracing is off.
	TID causal.ID
}

// From implements sim.Message.
func (m Improve) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m Improve) To() sim.AgentID { return m.Receiver }

// CausalID implements causal.Traced.
func (m Improve) CausalID() causal.ID { return m.TID }

// WithCausalID implements causal.Traced.
func (m Improve) WithCausalID(id causal.ID) any { m.TID = id; return m }

type mode int

const (
	waitOk mode = iota + 1
	waitImprove
)

// Stats exposes per-agent bookkeeping.
type Stats struct {
	// Moves counts value changes.
	Moves int64
	// QuasiLocalMinima counts detected quasi-local-minima (weight bumps).
	QuasiLocalMinima int64
	// WeightIncreases counts individual nogood-weight increments.
	WeightIncreases int64
}

// Agent is one DB agent owning one variable.
type Agent struct {
	id        csp.Var
	domain    []csp.Value
	neighbors []csp.Var
	nogoods   []csp.Nogood
	weights   []int
	counter   nogood.Counter

	value csp.Value
	// dv holds the neighbors' last-known values plus the own variable,
	// whose slot doubles as the probe value during eval scans (eval leaves
	// it at the last probed value; every scan site restores it to a.value).
	// The dense representation lets eval use nogood.CheckDense — zero
	// allocations per check, unlike the old per-probe interface boxing.
	dv   *csp.DenseView
	mode mode

	myImprove int
	myEval    int
	bestValue csp.Value

	improves map[csp.Var]int
	oks      int
	stats    Stats
}

var _ sim.Agent = (*Agent)(nil)

// NewAgent builds the DB agent for variable id of problem starting at
// initial. All nogood weights start at 1.
func NewAgent(id csp.Var, problem *csp.Problem, initial csp.Value) *Agent {
	ngs := problem.NogoodsOf(id)
	weights := make([]int, len(ngs))
	for i := range weights {
		weights[i] = 1
	}
	dv := csp.NewDenseView(problem.NumVars())
	dv.Assign(id, initial)
	return &Agent{
		id:        id,
		domain:    problem.Domain(id),
		neighbors: problem.Neighbors(id),
		nogoods:   ngs,
		weights:   weights,
		value:     initial,
		dv:        dv,
		mode:      waitOk,
		improves:  make(map[csp.Var]int),
	}
}

// ID implements sim.Agent.
func (a *Agent) ID() sim.AgentID { return sim.AgentID(a.id) }

// CurrentValue implements sim.Agent.
func (a *Agent) CurrentValue() csp.Value { return a.value }

// Checks implements sim.Agent.
func (a *Agent) Checks() int64 { return a.counter.Total() }

// Stats returns the agent's bookkeeping counters.
func (a *Agent) Stats() Stats { return a.stats }

// StoreSize returns the number of nogoods this agent evaluates. DB does not
// learn, so the count is fixed at construction; it is exposed so the
// telemetry layer reports a uniform per-agent store size across algorithms.
func (a *Agent) StoreSize() int { return len(a.nogoods) }

// Instrument attaches telemetry. DB's nogood set never grows, so the size
// gauge is set once; the length histogram and evictions counter are unused
// (no learning, nothing to evict).
func (a *Agent) Instrument(m telemetry.StoreMetrics) {
	m.Size.Set(int64(len(a.nogoods)))
}

// Weight returns the current weight of the i-th nogood (for tests).
func (a *Agent) Weight(i int) int { return a.weights[i] }

// Init implements sim.Agent: repair unary-constraint violations of the
// initial value (against an empty view only unary nogoods can evaluate),
// then announce the value.
func (a *Agent) Init() []sim.Message {
	best := a.eval(a.value)
	for _, d := range a.domain {
		if d == a.value {
			continue
		}
		if e := a.eval(d); e < best {
			best = e
			a.value = d
		}
	}
	a.dv.Assign(a.id, a.value)
	return a.sendOks(nil)
}

// Step implements sim.Agent. The synchronous lockstep guarantees each cycle
// delivers one complete wave: all neighbors' ok? messages or all neighbors'
// improve messages.
func (a *Agent) Step(in []sim.Message) []sim.Message {
	for _, m := range in {
		switch msg := m.(type) {
		case Ok:
			a.dv.Assign(csp.Var(msg.Sender), msg.Value)
			a.oks++
		case Improve:
			a.improves[csp.Var(msg.Sender)] = msg.Improve
		default:
			panic(fmt.Sprintf("breakout: unexpected message type %T", m))
		}
	}
	switch a.mode {
	case waitOk:
		if a.oks < len(a.neighbors) {
			return nil
		}
		a.oks = 0
		return a.sendImproves()
	case waitImprove:
		if len(a.improves) < len(a.neighbors) {
			return nil
		}
		return a.decide()
	default:
		panic(fmt.Sprintf("breakout: invalid mode %d", a.mode))
	}
}

// sendImproves computes the weighted cost of the current value and the best
// achievable cost, then broadcasts the improve message (wave 1 → wave 2).
func (a *Agent) sendImproves() []sim.Message {
	a.myEval = a.eval(a.value)
	bestEval := a.myEval
	a.bestValue = a.value
	for _, d := range a.domain {
		if d == a.value {
			continue
		}
		e := a.eval(d)
		if e < bestEval {
			bestEval = e
			a.bestValue = d
		}
	}
	a.myImprove = a.myEval - bestEval
	a.dv.Assign(a.id, a.value)
	a.mode = waitImprove

	msgs := make([]sim.Message, 0, len(a.neighbors))
	for _, nb := range a.neighbors {
		msgs = append(msgs, Improve{
			Sender:   a.ID(),
			Receiver: sim.AgentID(nb),
			Improve:  a.myImprove,
			Eval:     a.myEval,
		})
	}
	return msgs
}

// decide resolves the value-change right, handles quasi-local-minima, and
// broadcasts ok? (wave 2 → wave 1).
func (a *Agent) decide() []sim.Message {
	iWin := a.myImprove > 0
	anyPositiveNeighbor := false
	for nb, imp := range a.improves {
		if imp > a.myImprove || (imp == a.myImprove && nb < a.id) {
			iWin = false
		}
		if imp > 0 {
			anyPositiveNeighbor = true
		}
	}
	switch {
	case iWin:
		a.value = a.bestValue
		a.dv.Assign(a.id, a.value)
		a.stats.Moves++
	case a.myEval > 0 && a.myImprove <= 0 && !anyPositiveNeighbor:
		// Quasi-local-minimum: violating, cannot improve, and no neighbor
		// can either. Break out by raising the weights of the violated
		// nogoods. The dense view already holds the current value.
		a.stats.QuasiLocalMinima++
		for i, ng := range a.nogoods {
			if nogood.CheckDense(ng, a.dv, &a.counter) {
				a.weights[i]++
				a.stats.WeightIncreases++
			}
		}
	}
	clear(a.improves)
	a.mode = waitOk
	return a.sendOks(nil)
}

// eval is the weighted count of nogoods violated when the own variable
// takes val; each nogood evaluation charges one check. It leaves the own
// variable's dense-view slot at val; callers restore a.value when the scan
// is done.
func (a *Agent) eval(val csp.Value) int {
	total := 0
	a.dv.Assign(a.id, val)
	for i, ng := range a.nogoods {
		if nogood.CheckDense(ng, a.dv, &a.counter) {
			total += a.weights[i]
		}
	}
	return total
}

func (a *Agent) sendOks(msgs []sim.Message) []sim.Message {
	for _, nb := range a.neighbors {
		msgs = append(msgs, Ok{
			Sender:   a.ID(),
			Receiver: sim.AgentID(nb),
			Value:    a.value,
		})
	}
	return msgs
}
