// Package trace records synchronous runs as JSON-lines event streams and
// reads them back for offline analysis. A trace captures what the paper's
// plots are made of — per-cycle message counts and per-cycle maximum nogood
// checks — so a single run can be inspected cycle by cycle (dcspsolve
// -trace writes one).
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/discsp/discsp/internal/sim"
)

// Kind discriminates trace events.
type Kind string

const (
	// KindStart opens a trace with run metadata.
	KindStart Kind = "start"
	// KindCycle is one simulator cycle.
	KindCycle Kind = "cycle"
	// KindEnd closes a trace with the run's result.
	KindEnd Kind = "end"
)

// Event is one line of a trace. Fields are populated according to Kind.
type Event struct {
	Kind Kind `json:"kind"`

	// Start fields.
	Algorithm string `json:"algorithm,omitempty"`
	Vars      int    `json:"vars,omitempty"`
	Nogoods   int    `json:"nogoods,omitempty"`

	// Cycle fields.
	Cycle       int   `json:"cycle,omitempty"`
	MessagesIn  int   `json:"messagesIn,omitempty"`
	MessagesOut int   `json:"messagesOut,omitempty"`
	MaxChecks   int64 `json:"maxChecks,omitempty"`

	// End fields (SolutionFound doubles as the cycle-level flag).
	SolutionFound bool  `json:"solutionFound,omitempty"`
	Insoluble     bool  `json:"insoluble,omitempty"`
	Cycles        int   `json:"cycles,omitempty"`
	MaxCCK        int64 `json:"maxcck,omitempty"`
	TotalChecks   int64 `json:"totalChecks,omitempty"`
	Messages      int   `json:"messages,omitempty"`
}

// Meta describes the run being traced.
type Meta struct {
	Algorithm string
	Vars      int
	Nogoods   int
}

// Recorder streams events to a writer. Use Start, pass Hook to
// sim.Options.Trace, then End and Flush. Write errors are sticky and
// surfaced by Flush.
type Recorder struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewRecorder wraps w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{bw: bw, enc: json.NewEncoder(bw)}
}

func (r *Recorder) emit(ev Event) {
	if r.err != nil {
		return
	}
	r.err = r.enc.Encode(ev)
}

// Start records run metadata; call once before the run.
func (r *Recorder) Start(meta Meta) {
	r.emit(Event{
		Kind:      KindStart,
		Algorithm: meta.Algorithm,
		Vars:      meta.Vars,
		Nogoods:   meta.Nogoods,
	})
}

// Hook returns the callback to install as sim.Options.Trace.
func (r *Recorder) Hook() func(sim.CycleEvent) {
	return func(ev sim.CycleEvent) {
		r.emit(Event{
			Kind:          KindCycle,
			Cycle:         ev.Cycle,
			MessagesIn:    ev.MessagesIn,
			MessagesOut:   ev.MessagesOut,
			MaxChecks:     ev.MaxChecks,
			SolutionFound: ev.SolutionFound,
		})
	}
}

// End records the run's result; call once after the run.
func (r *Recorder) End(res sim.Result) {
	r.emit(Event{
		Kind:          KindEnd,
		SolutionFound: res.Solved,
		Insoluble:     res.Insoluble,
		Cycles:        res.Cycles,
		MaxCCK:        res.MaxCCK,
		TotalChecks:   res.TotalChecks,
		Messages:      res.Messages,
	})
}

// Flush drains the buffer and reports the first sticky error.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.bw.Flush()
}

// ErrMalformedTrace reports a structurally invalid trace stream.
var ErrMalformedTrace = errors.New("trace: malformed trace")

// ErrTelemetryStream marks a schema-2 telemetry stream (dcspsolve
// -telemetry) fed to this v1 trace reader; read it with the telemetry
// reader instead.
var ErrTelemetryStream = errors.New("trace: schema-2 telemetry stream (dcspsolve -telemetry format); read it with the telemetry reader")

// ErrTruncatedTrace marks a trace cut off at a line boundary: the JSONL is
// well-formed but the closing end event never arrived — the writer died
// mid-run, or the file's tail was torn. Reported by CheckComplete, not
// Read, so mid-run followers can still tail a live trace; table-rendering
// consumers (dcsptrace) must refuse it instead of printing a silently
// partial summary.
var ErrTruncatedTrace = errors.New("trace: truncated trace")

// CheckComplete reports whether a fully-read trace reached its closing end
// event.
func CheckComplete(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("%w: empty trace", ErrTruncatedTrace)
	}
	if last := events[len(events)-1].Kind; last != KindEnd {
		return fmt.Errorf("%w: last event kind %q, want %q", ErrTruncatedTrace, last, KindEnd)
	}
	return nil
}

// Read parses a JSONL trace. A telemetry stream (recognized by its opening
// meta event) returns ErrTelemetryStream so callers can dispatch to the
// telemetry reader instead of surfacing a confusing field-level error.
func Read(rd io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	for line := 1; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrMalformedTrace, line, err)
		}
		switch ev.Kind {
		case KindStart, KindCycle, KindEnd:
		case "meta":
			if len(events) == 0 {
				return nil, ErrTelemetryStream
			}
			return nil, fmt.Errorf("%w: line %d: unknown kind %q", ErrMalformedTrace, line, ev.Kind)
		default:
			return nil, fmt.Errorf("%w: line %d: unknown kind %q", ErrMalformedTrace, line, ev.Kind)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Summary condenses a trace for reporting.
type Summary struct {
	Algorithm     string
	Cycles        int
	Solved        bool
	Insoluble     bool
	TotalMessages int
	MaxCCK        int64
	// BusiestCycle is the cycle with the largest per-cycle max checks.
	BusiestCycle       int
	BusiestCycleChecks int64
	// PeakMessagesCycle is the cycle with the most deliveries.
	PeakMessagesCycle int
	PeakMessages      int
}

// Summarize computes a Summary from parsed events.
func Summarize(events []Event) Summary {
	var s Summary
	for _, ev := range events {
		switch ev.Kind {
		case KindStart:
			s.Algorithm = ev.Algorithm
		case KindCycle:
			s.TotalMessages += ev.MessagesIn
			if ev.MaxChecks > s.BusiestCycleChecks {
				s.BusiestCycleChecks = ev.MaxChecks
				s.BusiestCycle = ev.Cycle
			}
			if ev.MessagesIn > s.PeakMessages {
				s.PeakMessages = ev.MessagesIn
				s.PeakMessagesCycle = ev.Cycle
			}
		case KindEnd:
			s.Solved = ev.SolutionFound
			s.Insoluble = ev.Insoluble
			s.Cycles = ev.Cycles
			s.MaxCCK = ev.MaxCCK
		}
	}
	return s
}
