package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

func TestRecordReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Start(Meta{Algorithm: "AWC", Vars: 5, Nogoods: 12})
	hook := r.Hook()
	hook(sim.CycleEvent{Cycle: 1, MessagesIn: 4, MessagesOut: 6, MaxChecks: 30})
	hook(sim.CycleEvent{Cycle: 2, MessagesIn: 6, MessagesOut: 0, MaxChecks: 12, SolutionFound: true})
	r.End(sim.Result{Solved: true, Cycles: 2, MaxCCK: 42, TotalChecks: 60, Messages: 10})
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	if events[0].Kind != KindStart || events[0].Algorithm != "AWC" || events[0].Vars != 5 {
		t.Errorf("start event = %+v", events[0])
	}
	if events[1].Kind != KindCycle || events[1].MaxChecks != 30 {
		t.Errorf("cycle event = %+v", events[1])
	}
	if events[3].Kind != KindEnd || !events[3].SolutionFound || events[3].MaxCCK != 42 {
		t.Errorf("end event = %+v", events[3])
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Kind: KindStart, Algorithm: "AWC"},
		{Kind: KindCycle, Cycle: 1, MessagesIn: 3, MaxChecks: 10},
		{Kind: KindCycle, Cycle: 2, MessagesIn: 9, MaxChecks: 50},
		{Kind: KindCycle, Cycle: 3, MessagesIn: 2, MaxChecks: 5},
		{Kind: KindEnd, SolutionFound: true, Cycles: 3, MaxCCK: 65},
	}
	s := Summarize(events)
	if s.Algorithm != "AWC" || !s.Solved || s.Cycles != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.BusiestCycle != 2 || s.BusiestCycleChecks != 50 {
		t.Errorf("busiest = %d/%d", s.BusiestCycle, s.BusiestCycleChecks)
	}
	if s.PeakMessagesCycle != 2 || s.PeakMessages != 9 {
		t.Errorf("peak messages = %d/%d", s.PeakMessagesCycle, s.PeakMessages)
	}
	if s.TotalMessages != 14 {
		t.Errorf("total messages = %d", s.TotalMessages)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); !errors.Is(err, ErrMalformedTrace) {
		t.Errorf("err = %v, want ErrMalformedTrace", err)
	}
	if _, err := Read(strings.NewReader(`{"kind":"bogus"}` + "\n")); !errors.Is(err, ErrMalformedTrace) {
		t.Errorf("unknown kind: err = %v", err)
	}
	events, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Errorf("blank lines: %v, %v", events, err)
	}
}

// TestTraceLiveRun wires a Recorder into a real AWC run and sanity-checks
// the reconstructed summary against the run's result.
func TestTraceLiveRun(t *testing.T) {
	inst, err := gen.Coloring(20, 54, 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 32)
	agents := make([]sim.Agent, inst.Problem.NumVars())
	for v := range agents {
		agents[v] = core.NewAgent(csp.Var(v), inst.Problem, init[v], core.Learning{Kind: core.LearnResolvent})
	}

	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Start(Meta{Algorithm: "AWC+Rslv", Vars: inst.Problem.NumVars(), Nogoods: inst.Problem.NumNogoods()})
	res, err := sim.Run(inst.Problem, agents, sim.Options{Trace: rec.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	rec.End(res)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(events)
	if s.Solved != res.Solved || s.Cycles != res.Cycles || s.MaxCCK != res.MaxCCK {
		t.Errorf("summary %+v does not match result %+v", s, res)
	}
	if s.TotalMessages != res.Messages {
		t.Errorf("summary messages %d, result %d", s.TotalMessages, res.Messages)
	}
	// One cycle event per cycle plus start and end.
	if len(events) != res.Cycles+2 {
		t.Errorf("events = %d, want %d", len(events), res.Cycles+2)
	}
}
