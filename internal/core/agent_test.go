package core

import (
	"math/rand"
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

// starProblem: variable `center` (id 2) with higher neighbor 0 and lower
// neighbors 3, 4, all pairwise not-equal with the center over domain
// {0,1,2}. All priorities start 0, so rank order is by id: 0 outranks 2
// outranks 3 and 4.
func starProblem(t *testing.T) *csp.Problem {
	t.Helper()
	p := csp.NewProblemUniform(5, 3)
	for _, nb := range []csp.Var{0, 3, 4} {
		if err := p.AddNotEqual(2, nb); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestAgentConsistentDoesNothing(t *testing.T) {
	p := starProblem(t)
	a := NewAgent(2, p, 1, Learning{Kind: LearnResolvent})
	// Higher neighbor 0 takes value 0: current value 1 is consistent with
	// the only higher nogoods (those with x0). Lower neighbors conflict,
	// but that is their problem.
	out := a.Step([]sim.Message{
		Ok{Sender: 0, Receiver: 2, Value: 0, Priority: 0},
		Ok{Sender: 3, Receiver: 2, Value: 1, Priority: 0},
		Ok{Sender: 4, Receiver: 2, Value: 1, Priority: 0},
	})
	if len(out) != 0 {
		t.Errorf("consistent agent sent %d messages: %v", len(out), out)
	}
	if a.CurrentValue() != 1 {
		t.Errorf("value changed to %d", a.CurrentValue())
	}
}

func TestAgentRepairsMinimizingLowerViolations(t *testing.T) {
	p := starProblem(t)
	a := NewAgent(2, p, 0, Learning{Kind: LearnResolvent})
	// Higher neighbor takes the agent's current value 0 → must move.
	// Lower neighbors both hold 1, so candidate 1 violates two lower
	// nogoods while candidate 2 violates none.
	out := a.Step([]sim.Message{
		Ok{Sender: 0, Receiver: 2, Value: 0, Priority: 0},
		Ok{Sender: 3, Receiver: 2, Value: 1, Priority: 0},
		Ok{Sender: 4, Receiver: 2, Value: 1, Priority: 0},
	})
	if a.CurrentValue() != 2 {
		t.Fatalf("value = %d, want 2 (minimum lower violations)", a.CurrentValue())
	}
	if a.Priority() != 0 {
		t.Errorf("repair must not raise priority, got %d", a.Priority())
	}
	// The move is announced to all three neighbors.
	okCount := 0
	for _, m := range out {
		if _, isOk := m.(Ok); isOk {
			okCount++
		}
	}
	if okCount != 3 {
		t.Errorf("ok messages = %d, want 3", okCount)
	}
}

func TestAgentDuplicateNogoodSuppressed(t *testing.T) {
	// Two higher neighbors 0 and 1 pin all... domain {0,1} with both
	// values prohibited: deadend. Repeating the identical deadend must be
	// silent the second time.
	p := csp.NewProblemUniform(3, 2)
	if err := p.AddNotEqual(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNotEqual(1, 2); err != nil {
		t.Fatal(err)
	}
	a := NewAgent(2, p, 0, Learning{Kind: LearnResolvent})
	out1 := a.Step([]sim.Message{
		Ok{Sender: 0, Receiver: 2, Value: 0, Priority: 5},
		Ok{Sender: 1, Receiver: 2, Value: 1, Priority: 5},
	})
	if len(out1) == 0 {
		t.Fatalf("first deadend produced no messages")
	}
	if a.Stats().NogoodsGenerated != 1 {
		t.Fatalf("generated = %d, want 1", a.Stats().NogoodsGenerated)
	}
	// Same values at priorities above the agent's raised one: the deadend
	// recurs and derives the identical nogood, so the agent must do
	// nothing (Section 2.2's completeness guard).
	out2 := a.Step([]sim.Message{
		Ok{Sender: 0, Receiver: 2, Value: 0, Priority: 10},
		Ok{Sender: 1, Receiver: 2, Value: 1, Priority: 10},
	})
	if len(out2) != 0 {
		t.Errorf("duplicate deadend produced %d messages: %v", len(out2), out2)
	}
	// The derivation itself is counted (Table 4 counts generations even
	// when suppression swallows the result) and flagged redundant.
	if a.Stats().NogoodsGenerated != 2 {
		t.Errorf("generated = %d after duplicate, want 2", a.Stats().NogoodsGenerated)
	}
	if a.Stats().RedundantGenerations != 1 {
		t.Errorf("redundant = %d, want 1", a.Stats().RedundantGenerations)
	}
	if a.Stats().Deadends != 2 {
		t.Errorf("deadends = %d, want 2", a.Stats().Deadends)
	}
}

func TestAgentInsolubleOnWipedDomain(t *testing.T) {
	p := csp.NewProblemUniform(1, 2)
	for val := csp.Value(0); val < 2; val++ {
		if err := p.AddNogood(csp.MustNogood(csp.Lit{Var: 0, Val: val})); err != nil {
			t.Fatal(err)
		}
	}
	a := NewAgent(0, p, 0, Learning{Kind: LearnResolvent})
	out := a.Init()
	if !a.Insoluble() {
		t.Fatalf("agent with wiped domain not insoluble")
	}
	if len(out) != 0 {
		t.Errorf("insoluble agent sent %v", out)
	}
	// Further steps stay silent.
	if got := a.Step([]sim.Message{Ok{Sender: 0, Receiver: 0}}); len(got) != 0 {
		t.Errorf("insoluble agent stepped: %v", got)
	}
}

func TestAgentAnswersRequest(t *testing.T) {
	p := starProblem(t)
	a := NewAgent(2, p, 1, Learning{Kind: LearnResolvent})
	out := a.Step([]sim.Message{Request{Sender: 1, Receiver: 2}})
	if len(out) != 1 {
		t.Fatalf("out = %v, want one ok? reply", out)
	}
	reply, ok := out[0].(Ok)
	if !ok || reply.Receiver != 1 || reply.Value != 1 {
		t.Fatalf("reply = %+v", out[0])
	}
	// The requester is now a standing link: a later value change reaches
	// it too.
	out = a.Step([]sim.Message{
		Ok{Sender: 0, Receiver: 2, Value: 1, Priority: 3},
	})
	sawLink := false
	for _, m := range out {
		if okMsg, isOk := m.(Ok); isOk && okMsg.Receiver == 1 {
			sawLink = true
		}
	}
	if !sawLink {
		t.Errorf("value change not announced to requester: %v", out)
	}
}

func TestAgentRequestsUnknownNogoodVariable(t *testing.T) {
	p := starProblem(t)
	a := NewAgent(2, p, 1, Learning{Kind: LearnResolvent})
	// A nogood mentioning variable 1, which agent 2 has no link to.
	ng := csp.MustNogood(csp.Lit{Var: 1, Val: 0}, csp.Lit{Var: 2, Val: 1})
	out := a.Step([]sim.Message{NogoodMsg{Sender: 0, Receiver: 2, Nogood: ng}})
	sawRequest := false
	for _, m := range out {
		if req, isReq := m.(Request); isReq && req.Receiver == 1 {
			sawRequest = true
		}
	}
	if !sawRequest {
		t.Errorf("no Request sent for unknown variable: %v", out)
	}
	// The value asserted by the nogood was adopted, and the nogood
	// recorded, so the current value 1 became inconsistent: with x1=0
	// ranked above x2, nogood {(1,0),(2,1)} is higher and violated → the
	// agent must have moved off value 1.
	if a.CurrentValue() == 1 {
		t.Errorf("agent kept value 1 despite adopted nogood")
	}
	if a.StoreSize() != len(p.NogoodsOf(2))+1 {
		t.Errorf("store size = %d, want %d", a.StoreSize(), len(p.NogoodsOf(2))+1)
	}
}

func TestAgentSizeBoundedRecording(t *testing.T) {
	p := starProblem(t)
	base := len(p.NogoodsOf(2))
	a := NewAgent(2, p, 1, Learning{Kind: LearnResolvent, SizeBound: 2})
	// Distinct from the initial not-equal nogoods, which pair equal values.
	small := csp.MustNogood(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 2, Val: 2})
	big := csp.MustNogood(
		csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 1, Val: 1}, csp.Lit{Var: 2, Val: 1},
	)
	a.Step([]sim.Message{NogoodMsg{Sender: 0, Receiver: 2, Nogood: big}})
	if a.StoreSize() != base {
		t.Errorf("size-3 nogood recorded under SizeBound=2")
	}
	a.Step([]sim.Message{NogoodMsg{Sender: 0, Receiver: 2, Nogood: small}})
	if a.StoreSize() != base+1 {
		t.Errorf("size-2 nogood not recorded under SizeBound=2")
	}
}

func TestAgentNoRecord(t *testing.T) {
	p := starProblem(t)
	base := len(p.NogoodsOf(2))
	a := NewAgent(2, p, 1, Learning{Kind: LearnResolvent, NoRecord: true})
	ng := csp.MustNogood(csp.Lit{Var: 0, Val: 0}, csp.Lit{Var: 2, Val: 0})
	a.Step([]sim.Message{NogoodMsg{Sender: 0, Receiver: 2, Nogood: ng}})
	if a.StoreSize() != base {
		t.Errorf("norec agent recorded a received nogood")
	}
}

func TestAgentRedundantGenerationCounting(t *testing.T) {
	// Three deadends with nogoods α, β, α: the third regenerates a nogood
	// the agent already produced (the duplicate guard only suppresses
	// consecutive repeats), so it must count as redundant — the Table 4
	// measure.
	p := csp.NewProblemUniform(3, 2)
	if err := p.AddNotEqual(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNotEqual(1, 2); err != nil {
		t.Fatal(err)
	}
	a := NewAgent(2, p, 0, Learning{Kind: LearnResolvent, NoRecord: true})
	squeeze := func(v0, v1 csp.Value, prio int) []sim.Message {
		return []sim.Message{
			Ok{Sender: 0, Receiver: 2, Value: v0, Priority: prio},
			Ok{Sender: 1, Receiver: 2, Value: v1, Priority: prio},
		}
	}
	a.Step(squeeze(0, 1, 100)) // α = {(0,0),(1,1)}
	a.Step(squeeze(1, 0, 200)) // β = {(0,1),(1,0)}
	a.Step(squeeze(0, 1, 300)) // α again → redundant
	st := a.Stats()
	if st.NogoodsGenerated != 3 {
		t.Fatalf("generated = %d, want 3", st.NogoodsGenerated)
	}
	if st.RedundantGenerations != 1 {
		t.Errorf("redundant = %d, want 1", st.RedundantGenerations)
	}
}

// TestResolventProperties: on randomized deadends, the derived resolvent
// (a) never mentions the learner's variable, (b) is violated under the
// agent's view, and (c) the mcs result is a subset of the view that is
// still a conflict set.
func TestResolventProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		numVars := 4 + rng.Intn(4)
		domSize := 2 + rng.Intn(2)
		own := csp.Var(numVars - 1)
		p := csp.NewProblemUniform(numVars, domSize)
		for v := csp.Var(0); v < own; v++ {
			if err := p.AddNotEqual(v, own); err != nil {
				t.Fatal(err)
			}
		}
		kind := LearnResolvent
		if trial%2 == 1 {
			kind = LearnMCS
		}
		a := NewAgent(own, p, 0, Learning{Kind: kind})
		// Random higher view covering every domain value at least once so
		// a deadend is guaranteed.
		in := make([]sim.Message, 0, int(own))
		view := csp.NewMapAssignment()
		for v := csp.Var(0); v < own; v++ {
			val := csp.Value(int(v) % domSize)
			if int(v) >= domSize {
				val = csp.Value(rng.Intn(domSize))
			}
			view[v] = val
			in = append(in, Ok{
				Sender:   sim.AgentID(v),
				Receiver: sim.AgentID(own),
				Value:    val,
				Priority: 1 + rng.Intn(5),
			})
		}
		out := a.Step(in)
		var learned *csp.Nogood
		for _, m := range out {
			if nm, ok := m.(NogoodMsg); ok {
				ng := nm.Nogood
				learned = &ng
				break
			}
		}
		if learned == nil {
			t.Fatalf("trial %d: deadend produced no nogood (out=%v)", trial, out)
		}
		if learned.Contains(own) {
			t.Fatalf("trial %d: resolvent %v mentions own variable", trial, learned)
		}
		if !learned.Violated(view) {
			t.Fatalf("trial %d: resolvent %v not violated under view %v", trial, learned, view)
		}
	}
}

func TestAgentSubsumptionPruning(t *testing.T) {
	p := starProblem(t)
	base := len(p.NogoodsOf(2))
	a := NewAgent(2, p, 1, Learning{Kind: LearnResolvent, SubsumptionPruning: true})
	// Mixed-value literals, so no initial not-equal nogood (which pairs
	// equal values) subsumes either of these.
	big := csp.MustNogood(
		csp.Lit{Var: 0, Val: 0}, csp.Lit{Var: 1, Val: 1}, csp.Lit{Var: 2, Val: 2},
	)
	small := csp.MustNogood(csp.Lit{Var: 0, Val: 0}, csp.Lit{Var: 2, Val: 2})
	a.Step([]sim.Message{NogoodMsg{Sender: 0, Receiver: 2, Nogood: big}})
	if a.StoreSize() != base+1 {
		t.Fatalf("store = %d, want %d", a.StoreSize(), base+1)
	}
	// The smaller nogood subsumes the big one: net store size unchanged.
	a.Step([]sim.Message{NogoodMsg{Sender: 0, Receiver: 2, Nogood: small}})
	if a.StoreSize() != base+1 {
		t.Errorf("store = %d after subsuming insert, want %d", a.StoreSize(), base+1)
	}
	if a.Stats().NogoodsPruned != 1 {
		t.Errorf("pruned = %d, want 1", a.Stats().NogoodsPruned)
	}
	// Re-inserting the big one is accepted (subsumed inserts are kept so
	// AWC's store keeps growing; see nogood.AddPruning) — only its
	// supersets would be pruned.
	a.Step([]sim.Message{NogoodMsg{Sender: 0, Receiver: 2, Nogood: big}})
	if a.StoreSize() != base+2 {
		t.Errorf("store = %d after re-insert, want %d", a.StoreSize(), base+2)
	}
}

func TestTieBreakRandomStillSolvesAndIsSeeded(t *testing.T) {
	p := starProblem(t)
	mk := func(seed int64) *Agent {
		return NewAgent(2, p, 0, Learning{Kind: LearnResolvent, TieBreak: TieBreakRandom, Seed: seed})
	}
	in := []sim.Message{
		Ok{Sender: 0, Receiver: 2, Value: 0, Priority: 0},
		Ok{Sender: 3, Receiver: 2, Value: 0, Priority: 0},
		Ok{Sender: 4, Receiver: 2, Value: 0, Priority: 0},
	}
	// Candidates 1 and 2 tie (no lower violations each); a fixed seed must
	// give a reproducible pick, and across seeds both values must appear.
	first := mk(1)
	first.Step(in)
	same := mk(1)
	same.Step(in)
	if first.CurrentValue() != same.CurrentValue() {
		t.Fatalf("same seed, different picks: %d vs %d", first.CurrentValue(), same.CurrentValue())
	}
	seen := map[csp.Value]bool{}
	for seed := int64(0); seed < 16; seed++ {
		a := mk(seed)
		a.Step(in)
		if v := a.CurrentValue(); v != 1 && v != 2 {
			t.Fatalf("seed %d picked non-candidate %d", seed, v)
		}
		seen[a.CurrentValue()] = true
	}
	if len(seen) != 2 {
		t.Errorf("random tie-break never varied across 16 seeds: %v", seen)
	}
}

func TestLearningNameExtensions(t *testing.T) {
	l := Learning{Kind: LearnResolvent, SubsumptionPruning: true}
	if l.Name() != "Rslv/prune" {
		t.Errorf("Name = %q", l.Name())
	}
}
