package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

func TestForEachSubset(t *testing.T) {
	collect := func(n, k int) [][]int {
		var out [][]int
		forEachSubset(n, k, func(idxs []int) bool {
			cp := make([]int, len(idxs))
			copy(cp, idxs)
			out = append(out, cp)
			return true
		})
		return out
	}
	if got := collect(3, 2); !reflect.DeepEqual(got, [][]int{{0, 1}, {0, 2}, {1, 2}}) {
		t.Errorf("subsets(3,2) = %v", got)
	}
	if got := collect(4, 1); !reflect.DeepEqual(got, [][]int{{0}, {1}, {2}, {3}}) {
		t.Errorf("subsets(4,1) = %v", got)
	}
	if got := collect(3, 3); !reflect.DeepEqual(got, [][]int{{0, 1, 2}}) {
		t.Errorf("subsets(3,3) = %v", got)
	}
	if got := collect(2, 0); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("subsets(2,0) = %v, want one empty subset", got)
	}
	if got := collect(2, 3); got != nil {
		t.Errorf("subsets(2,3) = %v, want none", got)
	}
	// Early stop.
	count := 0
	forEachSubset(5, 2, func([]int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d subsets", count)
	}
}

// mcsScenario builds an agent whose deadend resolvent is non-minimal: the
// higher neighbors 0, 1 each prohibit one domain value, and neighbor 2's
// constraint on the remaining value is subsumed by a recorded binary nogood
// on neighbor 0 alone... Construct directly: domain {0,1}, higher nogoods
// {(0,a)(3,0)}, {(1,b)(3,1)}, and additionally {(0,a)(3,1)} — so value 1 is
// prohibited by both a 2-literal nogood on x1 and one on x0. The resolvent
// picks per-value smallest; mcs must find that {(0,a)} alone is a conflict
// set (both values die under x0=a).
func mcsScenario(t *testing.T, restrict bool) *Agent {
	t.Helper()
	p := csp.NewProblemUniform(4, 2)
	add := func(lits ...csp.Lit) {
		t.Helper()
		if err := p.AddNogood(csp.MustNogood(lits...)); err != nil {
			t.Fatal(err)
		}
	}
	add(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 3, Val: 0})
	add(csp.Lit{Var: 1, Val: 1}, csp.Lit{Var: 3, Val: 1})
	add(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 3, Val: 1})
	a := NewAgent(3, p, 0, Learning{Kind: LearnMCS, MCSRestrictScan: restrict})
	out := a.Step([]sim.Message{
		Ok{Sender: 0, Receiver: 3, Value: 1, Priority: 2},
		Ok{Sender: 1, Receiver: 3, Value: 1, Priority: 1},
	})
	want := csp.MustNogood(csp.Lit{Var: 0, Val: 1})
	found := false
	for _, m := range out {
		if nm, ok := m.(NogoodMsg); ok {
			found = true
			if !nm.Nogood.Equal(want) {
				t.Errorf("mcs nogood = %v, want %v (minimum conflict set)", nm.Nogood, want)
			}
		}
	}
	if !found {
		t.Fatalf("no nogood sent at deadend")
	}
	return a
}

func TestMCSFindsMinimumConflictSet(t *testing.T) {
	mcsScenario(t, false)
}

func TestMCSRestrictScanSameResultFewerChecks(t *testing.T) {
	full := mcsScenario(t, false)
	restricted := mcsScenario(t, true)
	if restricted.Checks() >= full.Checks() {
		t.Errorf("restricted scan charged %d checks, full scan %d; restriction must be cheaper",
			restricted.Checks(), full.Checks())
	}
}

// TestMCSGreedyFallback drives a deadend whose resolvent exceeds the
// exhaustive limit, exercising greedyConflictSet. With limit 1, any
// resolvent of 2+ literals goes greedy; the greedy result must still be the
// minimum here.
func TestMCSGreedyFallback(t *testing.T) {
	p := csp.NewProblemUniform(4, 2)
	add := func(lits ...csp.Lit) {
		t.Helper()
		if err := p.AddNogood(csp.MustNogood(lits...)); err != nil {
			t.Fatal(err)
		}
	}
	add(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 3, Val: 0})
	add(csp.Lit{Var: 1, Val: 1}, csp.Lit{Var: 3, Val: 1})
	add(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 3, Val: 1})
	a := NewAgent(3, p, 0, Learning{Kind: LearnMCS, MCSExhaustiveLimit: 1})
	out := a.Step([]sim.Message{
		Ok{Sender: 0, Receiver: 3, Value: 1, Priority: 2},
		Ok{Sender: 1, Receiver: 3, Value: 1, Priority: 1},
	})
	want := csp.MustNogood(csp.Lit{Var: 0, Val: 1})
	for _, m := range out {
		if nm, ok := m.(NogoodMsg); ok {
			if !nm.Nogood.Equal(want) {
				t.Errorf("greedy mcs nogood = %v, want %v", nm.Nogood, want)
			}
			return
		}
	}
	t.Fatalf("no nogood sent")
}

// TestMCSMinimalityProperty: on randomized deadends, the mcs nogood must be
// a conflict set none of whose single-literal deletions remains one
// (checked against an oracle reimplementation).
func TestMCSMinimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		numVars := 4 + rng.Intn(3)
		domSize := 2 + rng.Intn(2)
		own := csp.Var(numVars - 1)
		p := csp.NewProblemUniform(numVars, domSize)
		// Random binary and ternary nogoods involving own, enough to
		// likely wipe the domain under a full view.
		for i := 0; i < numVars*domSize*2; i++ {
			lits := []csp.Lit{{Var: own, Val: csp.Value(rng.Intn(domSize))}}
			for len(lits) < 2+rng.Intn(2) {
				v := csp.Var(rng.Intn(int(own)))
				dup := false
				for _, l := range lits {
					if l.Var == v {
						dup = true
					}
				}
				if dup {
					continue
				}
				lits = append(lits, csp.Lit{Var: v, Val: csp.Value(rng.Intn(domSize))})
			}
			if err := p.AddNogood(csp.MustNogood(lits...)); err != nil {
				t.Fatal(err)
			}
		}
		a := NewAgent(own, p, 0, Learning{Kind: LearnMCS})
		in := make([]sim.Message, 0, int(own))
		view := csp.NewMapAssignment()
		for v := csp.Var(0); v < own; v++ {
			val := csp.Value(rng.Intn(domSize))
			view[v] = val
			in = append(in, Ok{Sender: sim.AgentID(v), Receiver: sim.AgentID(own), Value: val, Priority: 1})
		}
		out := a.Step(in)
		var learned *csp.Nogood
		for _, m := range out {
			if nm, ok := m.(NogoodMsg); ok {
				ng := nm.Nogood
				learned = &ng
				break
			}
		}
		if learned == nil {
			continue // no deadend this trial
		}
		if !oracleConflictSet(p, own, domSize, *learned) {
			t.Fatalf("trial %d: mcs output %v is not a conflict set", trial, learned)
		}
		for i := 0; i < learned.Len(); i++ {
			if oracleConflictSet(p, own, domSize, learned.WithoutAt(i)) {
				t.Fatalf("trial %d: mcs output %v not minimal (dropping %v keeps it a conflict set)",
					trial, learned, learned.At(i))
			}
		}
	}
}

// oracleConflictSet independently checks the conflict-set property: under
// the partial assignment `set`, every domain value of `own` violates some
// problem nogood.
func oracleConflictSet(p *csp.Problem, own csp.Var, domSize int, set csp.Nogood) bool {
	base := csp.NewMapAssignment(set.Lits()...)
	for d := 0; d < domSize; d++ {
		probe := csp.Override{Base: base, Var: own, Val: csp.Value(d)}
		hit := false
		for _, ng := range p.NogoodsOf(own) {
			if ng.Violated(probe) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}
