// Package core implements the paper's primary contribution: the asynchronous
// weak-commitment search algorithm (AWC) with pluggable nogood learning,
// including the resolvent-based learning of Section 3, mcs-based learning,
// no learning, the size-bounded variants of Section 4.2, and the no-record
// ablation of Table 4.
//
// Each Agent owns exactly one variable (the class of distributed CSPs the
// paper studies). Agents communicate with three message kinds:
//
//   - Ok: "my variable now has this value, at this priority";
//   - NogoodMsg: a newly derived nogood, sent to every agent whose variable
//     appears in it;
//   - Request: "start sending me your value" (the add-link mechanism used
//     when a received nogood mentions an unknown variable).
//
// The Agent type is runtime-agnostic: it consumes messages and produces
// messages, so the same implementation runs on the synchronous simulator
// (internal/sim) and the goroutine-per-agent asynchronous runtime
// (internal/async).
package core

import (
	"fmt"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
)

// LearningKind selects how an agent derives a nogood at a deadend.
type LearningKind int

const (
	// LearnNone performs no learning: at a deadend the agent only raises
	// its priority and moves (footnote 1 of the paper). This makes AWC
	// incomplete but never stuck.
	LearnNone LearningKind = iota + 1
	// LearnResolvent is the paper's resolvent-based learning (Section 3.1):
	// per domain value, select the smallest violated higher nogood (ties:
	// highest priority), union the selections, drop the own variable.
	LearnResolvent
	// LearnMCS is mcs-based learning (Mammen & Lesser style, Section 4.1):
	// derive the resolvent, then search its subsets from larger to smaller
	// for a minimum conflict set, charging nogood checks for every test.
	LearnMCS
)

// String implements fmt.Stringer.
func (k LearningKind) String() string {
	switch k {
	case LearnNone:
		return "No"
	case LearnResolvent:
		return "Rslv"
	case LearnMCS:
		return "Mcs"
	default:
		return fmt.Sprintf("LearningKind(%d)", int(k))
	}
}

// TieBreak selects how ties between equally good candidate values are
// resolved during value selection.
type TieBreak int

const (
	// TieBreakFirst deterministically picks the smallest value — the
	// repository default, which makes whole runs pure functions of their
	// seeds.
	TieBreakFirst TieBreak = iota
	// TieBreakRandom picks uniformly among the minima, as Yokoo's original
	// min-conflict value selection does; still deterministic given
	// Learning.Seed.
	TieBreakRandom
)

// Learning configures the learning strategy — and, more broadly, the agent
// policy knobs — shared by all agents of a run.
type Learning struct {
	// Kind selects the derivation method.
	Kind LearningKind
	// SizeBound, when positive, is the k of kthRslv (Section 4.2): derived
	// nogoods are still sent (the deadend must be broadcast) but a
	// recipient records one only when its size is at most k.
	SizeBound int
	// NoRecord, when true, is the Rslv/norec ablation of Table 4:
	// recipients never record received nogoods.
	NoRecord bool
	// SubsumptionPruning, when true, stores received nogoods with
	// subsumption pruning: a nogood subsumed by a recorded one is dropped,
	// and recorded supersets of a new nogood are discarded. This is the
	// store-level answer to Section 4.2's observation that redundant large
	// nogoods inflate maxcck; subset tests are charged as checks so the
	// bookkeeping cost stays inside the metric.
	SubsumptionPruning bool
	// MCSRestrictScan, when true, restricts mcs conflict-set tests to the
	// nogoods that were violated at the deadend instead of scanning the
	// whole store of higher nogoods. The restriction is sound (a conflict
	// subset of the agent_view can only trip already-violated nogoods) and
	// much cheaper; it is off by default because the unoptimized scan is
	// what reproduces the paper's Mcs cost profile. Exposed as an ablation.
	MCSRestrictScan bool
	// TieBreak selects how ties between equally good candidate values are
	// resolved; the zero value means TieBreakFirst.
	TieBreak TieBreak
	// Seed drives TieBreakRandom (each agent derives an independent
	// stream from it, so runs stay reproducible).
	Seed int64
	// MCSExhaustiveLimit bounds the resolvent size up to which mcs-based
	// learning enumerates all subsets from larger to smaller (the paper's
	// description); above it the implementation falls back to greedy
	// destructive minimization, which yields a minimal (not necessarily
	// minimum) conflict set at polynomial cost. 0 means
	// DefaultMCSExhaustiveLimit.
	MCSExhaustiveLimit int
	// Reference, when true, runs agents on the original map-backed
	// agent-view representation (refpath.go) instead of the dense
	// slice-backed default. Both representations make bit-identical
	// decisions and charge bit-identical nogood checks — the
	// cross-representation equivalence tests enforce it — so Reference only
	// trades speed for the simpler code path. It exists as the verification
	// oracle and as the reproducible "before" side of the benchmark pairs.
	// Name() deliberately ignores it: table labels must match across
	// representations.
	Reference bool
	// Retention bounds each agent's nogood store (initial constraints are
	// pinned and exempt). The zero value is the unbounded reference policy
	// of the paper's experiments. Any bounded policy is sound — learned
	// nogoods are consequences of the initial constraints, so forgetting
	// one never changes a verdict, only (possibly) the work to reach it —
	// which the retention oracle tests in internal/experiments pin.
	Retention nogood.Retention
}

// DefaultMCSExhaustiveLimit is the default cap on exhaustive mcs subset
// enumeration. 2^10 subset tests per deadend is the most the exhaustive
// search may spend before the greedy fallback takes over.
const DefaultMCSExhaustiveLimit = 10

// Name returns the paper's label for the configuration: "Rslv", "Mcs", "No",
// "3rdRslv", "5thRslv", "Rslv/norec", ...
func (l Learning) Name() string {
	name := l.Kind.String()
	if l.SizeBound > 0 && l.Kind != LearnNone {
		name = fmt.Sprintf("%s%s", ordinal(l.SizeBound), name)
	}
	if l.NoRecord {
		name += "/norec"
	}
	if l.SubsumptionPruning {
		name += "/prune"
	}
	name += l.Retention.Suffix()
	return name
}

func ordinal(k int) string {
	suffix := "th"
	switch {
	case k%100/10 == 1:
		// 11th, 12th, 13th
	case k%10 == 1:
		suffix = "st"
	case k%10 == 2:
		suffix = "nd"
	case k%10 == 3:
		suffix = "rd"
	}
	return fmt.Sprintf("%d%s", k, suffix)
}

// shouldRecord reports whether a recipient records a received nogood under
// this configuration.
func (l Learning) shouldRecord(ng csp.Nogood) bool {
	if l.NoRecord {
		return false
	}
	if l.SizeBound > 0 && ng.Len() > l.SizeBound {
		return false
	}
	return true
}

// Ok is the ok? message: the sender's current value and priority.
type Ok struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	Value    csp.Value
	Priority int
	// TID is the message's causal trace ID; zero when tracing is off.
	TID causal.ID
}

// From implements sim.Message.
func (m Ok) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m Ok) To() sim.AgentID { return m.Receiver }

// CausalID implements causal.Traced.
func (m Ok) CausalID() causal.ID { return m.TID }

// WithCausalID implements causal.Traced.
func (m Ok) WithCausalID(id causal.ID) any { m.TID = id; return m }

// NogoodMsg carries a newly derived nogood to an agent whose variable
// appears in it.
type NogoodMsg struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	Nogood   csp.Nogood
	// TID is the message's causal trace ID; zero when tracing is off.
	TID causal.ID
}

// From implements sim.Message.
func (m NogoodMsg) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m NogoodMsg) To() sim.AgentID { return m.Receiver }

// CausalID implements causal.Traced.
func (m NogoodMsg) CausalID() causal.ID { return m.TID }

// WithCausalID implements causal.Traced.
func (m NogoodMsg) WithCausalID(id causal.ID) any { m.TID = id; return m }

// CarriedNogoodKey implements causal.NogoodCarrier: the stamping path links
// this message to the learn/store node that introduced its nogood.
func (m NogoodMsg) CarriedNogoodKey() string { return m.Nogood.Key() }

// Request asks the receiver to add the sender to its ok? recipients and to
// answer with its current value (the add-link mechanism of Section 2.2:
// "if the new nogood includes an unknown variable, the agent has to request
// the corresponding agent to send its value").
type Request struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	// TID is the message's causal trace ID; zero when tracing is off.
	TID causal.ID
}

// From implements sim.Message.
func (m Request) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m Request) To() sim.AgentID { return m.Receiver }

// CausalID implements causal.Traced.
func (m Request) CausalID() causal.ID { return m.TID }

// WithCausalID implements causal.Traced.
func (m Request) WithCausalID(id causal.ID) any { m.TID = id; return m }
