package core

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
)

// Stats exposes per-agent bookkeeping for the experiment harness.
type Stats struct {
	// Deadends counts check_agent_view invocations that found no value
	// consistent with the higher nogoods.
	Deadends int64
	// NogoodsGenerated counts nogoods actually derived and sent (a deadend
	// whose derived nogood equals the previous one is suppressed and not
	// counted, per the paper's "the agent does nothing" rule).
	NogoodsGenerated int64
	// RedundantGenerations counts generations of a nogood this agent had
	// already generated before (the Table 4 measure).
	RedundantGenerations int64
	// NogoodsRecorded counts received nogoods that passed the recording
	// rules and were new to the store.
	NogoodsRecorded int64
	// NogoodsPruned counts stored nogoods discarded by subsumption
	// pruning (Learning.SubsumptionPruning).
	NogoodsPruned int64
	// PriorityRaises counts deadend priority escalations.
	PriorityRaises int64
}

// viewEntry is what an agent knows about another agent's variable.
type viewEntry struct {
	val  csp.Value
	prio int
}

// Agent is one AWC agent owning one variable.
type Agent struct {
	id       csp.Var
	domain   []csp.Value
	learning Learning

	store   *nogood.Store
	counter nogood.Counter

	value    csp.Value
	priority int
	view     map[csp.Var]viewEntry
	outLinks map[csp.Var]struct{}

	lastLearned   *csp.Nogood
	generatedKeys map[string]struct{}
	insoluble     bool
	stats         Stats
	rng           *rand.Rand // non-nil only under TieBreakRandom

	// scratch reused across check_agent_view invocations.
	violatedHigher [][]csp.Nogood
	lowerViol      []int
}

var _ sim.Agent = (*Agent)(nil)

// NewAgent builds the AWC agent for variable id of problem, starting at the
// given initial value. The agent's store is seeded with the problem nogoods
// relevant to its variable (Section 2.1: agent i knows the nogoods relevant
// to its variable, including inter-agent nogoods).
func NewAgent(id csp.Var, problem *csp.Problem, initial csp.Value, learning Learning) *Agent {
	a := &Agent{
		id:            id,
		domain:        problem.Domain(id),
		learning:      learning,
		store:         nogood.NewFromSlice(problem.NogoodsOf(id)),
		value:         initial,
		view:          make(map[csp.Var]viewEntry),
		outLinks:      make(map[csp.Var]struct{}),
		generatedKeys: make(map[string]struct{}),
	}
	for _, nb := range problem.Neighbors(id) {
		a.outLinks[nb] = struct{}{}
	}
	a.violatedHigher = make([][]csp.Nogood, len(a.domain))
	a.lowerViol = make([]int, len(a.domain))
	if learning.TieBreak == TieBreakRandom {
		// Independent per-agent stream: runs stay pure functions of the
		// configured seed.
		a.rng = rand.New(rand.NewSource(learning.Seed*1_000_003 + int64(id)*7919 + 1))
	}
	return a
}

// chooseMin returns the index in [0,n) minimizing score among eligible
// indices, resolving ties per the configured tie-break; -1 when nothing is
// eligible.
func (a *Agent) chooseMin(n int, eligible func(int) bool, score func(int) int) int {
	best, bestScore := -1, 0
	for i := 0; i < n; i++ {
		if !eligible(i) {
			continue
		}
		if s := score(i); best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	if best < 0 || a.rng == nil {
		return best
	}
	// Reservoir-sample uniformly among the tied minima.
	picked, ties := -1, 0
	for i := 0; i < n; i++ {
		if !eligible(i) || score(i) != bestScore {
			continue
		}
		ties++
		if a.rng.Intn(ties) == 0 {
			picked = i
		}
	}
	return picked
}

// ID implements sim.Agent.
func (a *Agent) ID() sim.AgentID { return sim.AgentID(a.id) }

// CurrentValue implements sim.Agent.
func (a *Agent) CurrentValue() csp.Value { return a.value }

// Checks implements sim.Agent.
func (a *Agent) Checks() int64 { return a.counter.Total() }

// Priority returns the agent's current priority value.
func (a *Agent) Priority() int { return a.priority }

// Insoluble reports whether this agent derived the empty nogood, proving the
// problem has no solution.
func (a *Agent) Insoluble() bool { return a.insoluble }

// Stats returns the agent's bookkeeping counters.
func (a *Agent) Stats() Stats { return a.stats }

// StoreSize returns the number of nogoods currently recorded (initial
// constraints plus learned).
func (a *Agent) StoreSize() int { return a.store.Len() }

// Init implements sim.Agent: repair unary-constraint violations of the
// initial value (with an empty agent_view only unary nogoods can fire, and
// those are always "higher"), then announce the value to all neighbors. A
// variable whose unary constraints wipe out its whole domain derives the
// empty resolvent here, immediately proving insolubility.
func (a *Agent) Init() []sim.Message {
	if acted, msgs := a.checkAgentView(); acted {
		return msgs
	}
	return a.broadcastOk(nil)
}

// Step implements sim.Agent: absorb the cycle's messages, then run
// check_agent_view once and emit the resulting messages.
func (a *Agent) Step(in []sim.Message) []sim.Message {
	if a.insoluble {
		return nil
	}
	var (
		out        []sim.Message
		mustAnswer []csp.Var // fresh requesters needing an ok? reply
		sawTraffic bool
	)
	for _, m := range in {
		sawTraffic = true
		switch msg := m.(type) {
		case Ok:
			a.view[csp.Var(msg.Sender)] = viewEntry{val: msg.Value, prio: msg.Priority}
		case Request:
			// Always answer with the current value, even on an existing
			// link: the requester asked because it lacks the value.
			v := csp.Var(msg.Sender)
			a.outLinks[v] = struct{}{}
			mustAnswer = append(mustAnswer, v)
		case NogoodMsg:
			out = append(out, a.receiveNogood(msg.Nogood)...)
		default:
			panic(fmt.Sprintf("core: unexpected message type %T", m))
		}
	}
	if !sawTraffic {
		return nil
	}
	acted, actOut := a.checkAgentView()
	out = append(out, actOut...)
	if !acted {
		// The agent's state did not change, but fresh requesters still
		// need to learn the current value.
		for _, v := range mustAnswer {
			out = append(out, Ok{
				Sender:   a.ID(),
				Receiver: sim.AgentID(v),
				Value:    a.value,
				Priority: a.priority,
			})
		}
	}
	return out
}

// receiveNogood implements the nogood-message handler of Section 2.2:
// record the nogood (subject to the learning configuration's recording
// rules), and request values for unknown variables.
func (a *Agent) receiveNogood(ng csp.Nogood) []sim.Message {
	var out []sim.Message
	for _, l := range ng.Lits() {
		if l.Var == a.id {
			continue
		}
		if _, known := a.view[l.Var]; !known {
			// Adopt the value asserted by the nogood (it was true at the
			// sender's view) and ask the owner to keep us posted.
			a.view[l.Var] = viewEntry{val: l.Val, prio: 0}
			out = append(out, Request{Sender: a.ID(), Receiver: sim.AgentID(l.Var)})
		}
	}
	if a.learning.shouldRecord(ng) {
		if a.learning.SubsumptionPruning {
			added, removed := a.store.AddPruning(ng, &a.counter)
			if added {
				a.stats.NogoodsRecorded++
			}
			a.stats.NogoodsPruned += int64(removed)
		} else if a.store.Add(ng) {
			a.stats.NogoodsRecorded++
		}
	}
	return out
}

// probeView is the assignment "my agent_view with my variable set to val".
type probeView struct {
	a   *Agent
	val csp.Value
}

var _ csp.Assignment = probeView{}

// Lookup implements csp.Assignment.
func (p probeView) Lookup(v csp.Var) (csp.Value, bool) {
	if v == p.a.id {
		return p.val, true
	}
	e, ok := p.a.view[v]
	if !ok {
		return 0, false
	}
	return e.val, true
}

// rank is a variable's total-order priority: larger priority value wins,
// ties break toward the smaller variable id (the paper: "all ties in
// priorities are broken due to the alphabetical order of variables' ids").
type rank struct {
	p int
	v csp.Var
}

// outranks reports whether a is strictly higher-priority than b.
func (a rank) outranks(b rank) bool {
	if a.p != b.p {
		return a.p > b.p
	}
	return a.v < b.v
}

func (a *Agent) rankOf(v csp.Var) rank {
	if v == a.id {
		return rank{p: a.priority, v: v}
	}
	e, ok := a.view[v]
	if !ok {
		return rank{p: 0, v: v}
	}
	return rank{p: e.prio, v: v}
}

// nogoodRank returns the nogood's priority: the lowest rank among its
// variables excluding the owner's variable. A nogood with no other variable
// (a unary constraint on the owner) outranks everything — it must always be
// respected — signalled by ok=false.
func (a *Agent) nogoodRank(ng csp.Nogood) (rank, bool) {
	var (
		low   rank
		found bool
	)
	for _, v := range ng.Vars() {
		if v == a.id {
			continue
		}
		r := a.rankOf(v)
		if !found || low.outranks(r) {
			low, found = r, true
		}
	}
	return low, found
}

// isHigher reports whether ng is a higher nogood for this agent: its
// priority exceeds the owner variable's priority.
func (a *Agent) isHigher(ng csp.Nogood) bool {
	ngRank, ok := a.nogoodRank(ng)
	if !ok {
		return true // unary constraint on own variable
	}
	return ngRank.outranks(rank{p: a.priority, v: a.id})
}

// checkAgentView is the heart of AWC (Section 2.2). It returns whether the
// agent acted (changed value and/or priority) and the messages to send.
func (a *Agent) checkAgentView() (bool, []sim.Message) {
	// Fast path: is the current value consistent with all higher nogoods?
	// Scans until the first violated higher nogood, charging one check per
	// evaluated nogood.
	current := probeView{a: a, val: a.value}
	consistent := true
	for _, ng := range a.store.All() {
		if !a.isHigher(ng) {
			continue
		}
		if nogood.Check(ng, current, &a.counter) {
			consistent = false
			break
		}
	}
	if consistent {
		return false, nil
	}

	// Full evaluation: one pass per domain value over the whole store,
	// classifying each nogood as higher or lower and recording violations.
	for i := range a.domain {
		a.violatedHigher[i] = a.violatedHigher[i][:0]
		a.lowerViol[i] = 0
	}
	for _, ng := range a.store.All() {
		higher := a.isHigher(ng)
		for i, d := range a.domain {
			if nogood.Check(ng, probeView{a: a, val: d}, &a.counter) {
				if higher {
					a.violatedHigher[i] = append(a.violatedHigher[i], ng)
				} else {
					a.lowerViol[i]++
				}
			}
		}
	}

	// Candidates repair every higher violation; among them minimize
	// violations of lower nogoods.
	bestIdx := a.chooseMin(len(a.domain),
		func(i int) bool { return len(a.violatedHigher[i]) == 0 },
		func(i int) int { return a.lowerViol[i] })
	if bestIdx >= 0 {
		a.value = a.domain[bestIdx]
		return true, a.broadcastOk(nil)
	}

	// Deadend: every value violates some higher nogood.
	a.stats.Deadends++
	var ngMsgs []sim.Message
	if a.learning.Kind != LearnNone {
		learned := a.deriveNogood()
		// Generation statistics count every derivation — Table 4 measures
		// "nogoods generated", and the derivation work happens whether or
		// not the suppression guard below then swallows the result.
		a.stats.NogoodsGenerated++
		if _, seen := a.generatedKeys[learned.Key()]; seen {
			a.stats.RedundantGenerations++
		} else {
			a.generatedKeys[learned.Key()] = struct{}{}
		}
		if a.lastLearned != nil && learned.Equal(*a.lastLearned) {
			// Required for completeness (Section 2.2): regenerating the
			// same nogood means nothing new was learned; do nothing.
			return false, nil
		}
		cp := learned
		a.lastLearned = &cp
		if learned.Empty() {
			a.insoluble = true
			return false, nil
		}
		for _, v := range learned.Vars() {
			ngMsgs = append(ngMsgs, NogoodMsg{
				Sender:   a.ID(),
				Receiver: sim.AgentID(v),
				Nogood:   learned,
			})
		}
	}

	// Raise priority above everything currently in view, then move to the
	// value violating the fewest nogoods overall (higher and lower).
	maxPrio := a.priority
	for _, e := range a.view {
		if e.prio > maxPrio {
			maxPrio = e.prio
		}
	}
	a.priority = maxPrio + 1
	a.stats.PriorityRaises++

	bestIdx = a.chooseMin(len(a.domain),
		func(int) bool { return true },
		func(i int) int { return len(a.violatedHigher[i]) + a.lowerViol[i] })
	a.value = a.domain[bestIdx]
	return true, a.broadcastOk(ngMsgs)
}

// broadcastOk appends an ok? message for every outgoing link to msgs,
// in deterministic (ascending id) order.
func (a *Agent) broadcastOk(msgs []sim.Message) []sim.Message {
	targets := make([]csp.Var, 0, len(a.outLinks))
	for v := range a.outLinks {
		targets = append(targets, v)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, v := range targets {
		msgs = append(msgs, Ok{
			Sender:   a.ID(),
			Receiver: sim.AgentID(v),
			Value:    a.value,
			Priority: a.priority,
		})
	}
	return msgs
}
