package core

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
)

// Stats exposes per-agent bookkeeping for the experiment harness.
type Stats struct {
	// Deadends counts check_agent_view invocations that found no value
	// consistent with the higher nogoods.
	Deadends int64
	// NogoodsGenerated counts nogoods actually derived and sent (a deadend
	// whose derived nogood equals the previous one is suppressed and not
	// counted, per the paper's "the agent does nothing" rule).
	NogoodsGenerated int64
	// RedundantGenerations counts generations of a nogood this agent had
	// already generated before (the Table 4 measure).
	RedundantGenerations int64
	// NogoodsRecorded counts received nogoods that passed the recording
	// rules and were new to the store.
	NogoodsRecorded int64
	// NogoodsPruned counts stored nogoods discarded by subsumption
	// pruning (Learning.SubsumptionPruning).
	NogoodsPruned int64
	// PriorityRaises counts deadend priority escalations.
	PriorityRaises int64
}

// Agent is one AWC agent owning one variable.
//
// The agent view has two interchangeable representations. The default is
// dense: values live in a csp.DenseView indexed by variable (with the own
// variable's slot doubling as the probe value during evaluation), priorities
// in a parallel slice, and every stored nogood's higher/lower classification
// is cached and only recomputed when a priority or the store changes. The
// map-backed representation of the paper-faithful first implementation is
// kept verbatim behind Learning.Reference as a verification oracle (see
// refpath.go); both representations charge bit-identical nogood checks and
// make bit-identical decisions, which the cross-representation equivalence
// tests enforce.
type Agent struct {
	id       csp.Var
	domain   []csp.Value
	learning Learning

	store   *nogood.Store
	counter nogood.Counter

	value    csp.Value
	priority int

	// Dense representation (default).
	dv     *csp.DenseView // agent_view plus own variable (= probe slot)
	prios  []int          // prios[v] = last announced priority of v (0 unknown)
	links  []csp.Var      // sorted ok? broadcast targets
	linked []bool         // membership mirror of links
	// higher caches each stored nogood's higher/lower classification, by
	// store position. Rank depends only on priorities (not values), so the
	// cache stays valid until a view priority, the own priority, or the
	// store itself changes. Store changes are detected by generation, not
	// length: under a bounded retention policy an evict+insert pair leaves
	// the length unchanged while shifting positions.
	higher      []bool
	higherValid bool
	higherGen   int64
	mcsView     *csp.DenseView // scratch assignment for conflict-set tests
	litScratch  []csp.Lit      // scratch for resolvent assembly
	subScratch  []csp.Lit      // scratch for mcs subset candidates

	// Reference representation (Learning.Reference).
	view     map[csp.Var]viewEntry
	outLinks map[csp.Var]struct{}

	lastLearned   *csp.Nogood
	generatedKeys map[string]struct{}
	insoluble     bool
	stats         Stats
	rng           *rand.Rand // non-nil only under TieBreakRandom

	// causalT, when non-nil, records nogood lineage: store events for
	// recorded nogoods, learn events (with the consulted store entries as
	// causes) for derivations. Nil when tracing is off; every use is
	// nil-checked in the tracer, so the hot paths stay allocation-free.
	causalT *causal.AgentTracer

	// scratch reused across check_agent_view invocations.
	violatedHigher [][]csp.Nogood
	lowerViol      []int

	// seedRequests are the non-neighbor variables mentioned by warm-start
	// nogoods (SeedNogoods); Init asks each for its current value instead
	// of adopting the stale values the previous run saw.
	seedRequests []csp.Var
}

var _ sim.Agent = (*Agent)(nil)

// NewAgent builds the AWC agent for variable id of problem, starting at the
// given initial value. The agent's store is seeded with the problem nogoods
// relevant to its variable (Section 2.1: agent i knows the nogoods relevant
// to its variable, including inter-agent nogoods).
func NewAgent(id csp.Var, problem *csp.Problem, initial csp.Value, learning Learning) *Agent {
	a := &Agent{
		id:            id,
		domain:        problem.Domain(id),
		learning:      learning,
		store:         nogood.NewFromSliceRetention(problem.NogoodsOf(id), learning.Retention),
		value:         initial,
		generatedKeys: make(map[string]struct{}),
	}
	neighbors := problem.Neighbors(id)
	if learning.Reference {
		a.view = make(map[csp.Var]viewEntry)
		a.outLinks = make(map[csp.Var]struct{})
		for _, nb := range neighbors {
			a.outLinks[nb] = struct{}{}
		}
	} else {
		n := problem.NumVars()
		a.dv = csp.NewDenseView(n)
		a.dv.Assign(id, initial)
		a.prios = make([]int, n)
		a.mcsView = csp.NewDenseView(n)
		a.linked = make([]bool, n)
		a.links = make([]csp.Var, len(neighbors))
		copy(a.links, neighbors) // Neighbors returns sorted variables
		for _, nb := range neighbors {
			a.linked[nb] = true
		}
	}
	a.violatedHigher = make([][]csp.Nogood, len(a.domain))
	a.lowerViol = make([]int, len(a.domain))
	if learning.TieBreak == TieBreakRandom {
		// Independent per-agent stream: runs stay pure functions of the
		// configured seed.
		a.rng = rand.New(rand.NewSource(learning.Seed*1_000_003 + int64(id)*7919 + 1))
	}
	return a
}

// chooseMin returns the index in [0,n) minimizing score among eligible
// indices, resolving ties per the configured tie-break; -1 when nothing is
// eligible.
func (a *Agent) chooseMin(n int, eligible func(int) bool, score func(int) int) int {
	best, bestScore := -1, 0
	for i := 0; i < n; i++ {
		if !eligible(i) {
			continue
		}
		if s := score(i); best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	if best < 0 || a.rng == nil {
		return best
	}
	// Reservoir-sample uniformly among the tied minima.
	picked, ties := -1, 0
	for i := 0; i < n; i++ {
		if !eligible(i) || score(i) != bestScore {
			continue
		}
		ties++
		if a.rng.Intn(ties) == 0 {
			picked = i
		}
	}
	return picked
}

// ID implements sim.Agent.
func (a *Agent) ID() sim.AgentID { return sim.AgentID(a.id) }

// CurrentValue implements sim.Agent.
func (a *Agent) CurrentValue() csp.Value { return a.value }

// Checks implements sim.Agent.
func (a *Agent) Checks() int64 { return a.counter.Total() }

// Priority returns the agent's current priority value.
func (a *Agent) Priority() int { return a.priority }

// Insoluble reports whether this agent derived the empty nogood, proving the
// problem has no solution.
func (a *Agent) Insoluble() bool { return a.insoluble }

// Stats returns the agent's bookkeeping counters.
func (a *Agent) Stats() Stats { return a.stats }

// StoreSize returns the number of nogoods currently recorded (initial
// constraints plus learned).
func (a *Agent) StoreSize() int { return a.store.Len() }

// LearnedNogoods returns the surviving learned (unpinned) nogoods, for
// warm-start harvesting.
func (a *Agent) LearnedNogoods() []csp.Nogood { return a.store.Learned() }

// StoreEvictions returns the number of retention evictions so far.
func (a *Agent) StoreEvictions() int64 { return a.store.Evictions() }

// StoreLearnedLen returns the number of learned (unpinned, evictable)
// nogoods currently stored — the population a retention cap bounds.
func (a *Agent) StoreLearnedLen() int { return a.store.LearnedLen() }

// SetCausal attaches the causal tracing handle. Called after construction
// (and again on each crash-restart incarnation, which receives the same
// handle so trace IDs stay stable). A nil handle disables lineage
// recording.
func (a *Agent) SetCausal(at *causal.AgentTracer) { a.causalT = at }

// Instrument attaches telemetry to the agent's nogood store: Size tracks
// the live store size, Lengths the distribution of learned-nogood
// (resolvent) literal counts, Evictions the retention evictions. Called
// after construction so the initial constraints do not pollute the length
// histogram. Observationally inert: the hooks only read state the agent
// already maintains.
func (a *Agent) Instrument(m telemetry.StoreMetrics) {
	a.store.Instrument(m)
}

// SeedNogoods warm-starts the store with nogoods learned by a previous run
// on a compatible problem (see nogood.Cache for the admissibility rule the
// caller enforces). Called after construction, before the run begins.
// Seeding charges no checks — the knowledge was paid for when it was first
// learned — and honours the learning configuration's recording rules
// (size bound, no-record). Unlike receiveNogood, the values a seeded
// nogood asserts are NOT adopted into the agent_view: they were true at
// some view of the previous run and are meaningless now. Mentioned
// variables outside the constraint neighborhood are remembered and asked
// for their current value at Init (the add-link mechanism); until an owner
// answers, the seeded nogood simply cannot fire, which is exactly the
// semantics of an unknown variable.
func (a *Agent) SeedNogoods(ngs []csp.Nogood) {
	requested := make(map[csp.Var]bool)
	for _, ng := range ngs {
		if ng.Empty() || !a.learning.shouldRecord(ng) {
			continue
		}
		if !a.store.Add(ng) {
			continue
		}
		for i := 0; i < ng.Len(); i++ {
			v := ng.At(i).Var
			if v == a.id || requested[v] || a.isNeighbor(v) {
				continue
			}
			requested[v] = true
			a.seedRequests = append(a.seedRequests, v)
		}
	}
	sort.Slice(a.seedRequests, func(i, j int) bool { return a.seedRequests[i] < a.seedRequests[j] })
	a.higherValid = false
}

// isNeighbor reports whether v is already an ok? broadcast target (a
// constraint-graph neighbor, whose value will arrive in the first cycle
// without being asked).
func (a *Agent) isNeighbor(v csp.Var) bool {
	if a.learning.Reference {
		_, ok := a.outLinks[v]
		return ok
	}
	return a.linked[v]
}

// seedRequestMsgs emits one Request per warm-start variable (see
// SeedNogoods), in ascending order.
func (a *Agent) seedRequestMsgs() []sim.Message {
	if len(a.seedRequests) == 0 {
		return nil
	}
	msgs := make([]sim.Message, 0, len(a.seedRequests))
	for _, v := range a.seedRequests {
		msgs = append(msgs, Request{Sender: a.ID(), Receiver: sim.AgentID(v)})
	}
	return msgs
}

// Init implements sim.Agent: repair unary-constraint violations of the
// initial value (with an empty agent_view only unary nogoods can fire, and
// those are always "higher"), then announce the value to all neighbors. A
// variable whose unary constraints wipe out its whole domain derives the
// empty resolvent here, immediately proving insolubility. Warm-start value
// requests (SeedNogoods) ride along in front.
func (a *Agent) Init() []sim.Message {
	msgs := a.seedRequestMsgs()
	if acted, more := a.checkAgentView(); acted {
		return append(msgs, more...)
	}
	return a.broadcastOk(msgs)
}

// Reannounce implements sim.Reannouncer: restate the current value and
// priority to one peer whose process relaunched without memory. Only ok?
// broadcast targets get an announcement — a non-neighbor that wants the
// value will ask for it with a Request, exactly as in a fresh run.
func (a *Agent) Reannounce(peer sim.AgentID) []sim.Message {
	if !a.isNeighbor(csp.Var(peer)) {
		return nil
	}
	return []sim.Message{Ok{
		Sender:   a.ID(),
		Receiver: peer,
		Value:    a.value,
		Priority: a.priority,
	}}
}

// Step implements sim.Agent: absorb the cycle's messages, then run
// check_agent_view once and emit the resulting messages.
func (a *Agent) Step(in []sim.Message) []sim.Message {
	if a.insoluble {
		return nil
	}
	var (
		out        []sim.Message
		mustAnswer []csp.Var // fresh requesters needing an ok? reply
		sawTraffic bool
	)
	for _, m := range in {
		sawTraffic = true
		switch msg := m.(type) {
		case Ok:
			a.observe(csp.Var(msg.Sender), msg.Value, msg.Priority)
		case Request:
			// Always answer with the current value, even on an existing
			// link: the requester asked because it lacks the value.
			v := csp.Var(msg.Sender)
			a.addLink(v)
			mustAnswer = append(mustAnswer, v)
		case NogoodMsg:
			out = append(out, a.receiveNogood(msg)...)
		default:
			panic(fmt.Sprintf("core: unexpected message type %T", m))
		}
	}
	if !sawTraffic {
		return nil
	}
	acted, actOut := a.checkAgentView()
	out = append(out, actOut...)
	if !acted {
		// The agent's state did not change, but fresh requesters still
		// need to learn the current value.
		for _, v := range mustAnswer {
			out = append(out, Ok{
				Sender:   a.ID(),
				Receiver: sim.AgentID(v),
				Value:    a.value,
				Priority: a.priority,
			})
		}
	}
	return out
}

// observe records an ok? announcement in the agent_view.
func (a *Agent) observe(v csp.Var, val csp.Value, prio int) {
	if a.learning.Reference {
		a.view[v] = viewEntry{val: val, prio: prio}
		return
	}
	if a.prios[v] != prio {
		a.prios[v] = prio
		a.higherValid = false
	}
	a.dv.Assign(v, val)
}

// knows reports whether v appears in the agent_view.
func (a *Agent) knows(v csp.Var) bool {
	if a.learning.Reference {
		_, known := a.view[v]
		return known
	}
	return a.dv.Known(v)
}

// adopt enters an unknown variable's value into the agent_view at priority
// 0 (the value asserted by a received nogood). Priority 0 equals the rank
// an unknown variable already had, so the higher-nogood cache stays valid.
func (a *Agent) adopt(v csp.Var, val csp.Value) {
	if a.learning.Reference {
		a.view[v] = viewEntry{val: val, prio: 0}
		return
	}
	a.dv.Assign(v, val)
}

// addLink adds v to the ok? broadcast targets.
func (a *Agent) addLink(v csp.Var) {
	if a.learning.Reference {
		a.outLinks[v] = struct{}{}
		return
	}
	if a.linked[v] {
		return
	}
	a.linked[v] = true
	i := sort.Search(len(a.links), func(i int) bool { return a.links[i] >= v })
	a.links = append(a.links, 0)
	copy(a.links[i+1:], a.links[i:])
	a.links[i] = v
}

// receiveNogood implements the nogood-message handler of Section 2.2:
// record the nogood (subject to the learning configuration's recording
// rules), and request values for unknown variables.
func (a *Agent) receiveNogood(msg NogoodMsg) []sim.Message {
	ng := msg.Nogood
	var out []sim.Message
	for i := 0; i < ng.Len(); i++ {
		l := ng.At(i)
		if l.Var == a.id {
			continue
		}
		if !a.knows(l.Var) {
			// Adopt the value asserted by the nogood (it was true at the
			// sender's view) and ask the owner to keep us posted.
			a.adopt(l.Var, l.Val)
			out = append(out, Request{Sender: a.ID(), Receiver: sim.AgentID(l.Var)})
		}
	}
	if a.learning.shouldRecord(ng) {
		if a.learning.SubsumptionPruning {
			added, removed := a.store.AddPruning(ng, &a.counter)
			if added {
				a.stats.NogoodsRecorded++
				a.causalT.Store(ng, msg.TID)
			}
			if added || removed > 0 {
				a.higherValid = false
			}
			a.stats.NogoodsPruned += int64(removed)
		} else if a.store.Add(ng) {
			a.stats.NogoodsRecorded++
			a.higherValid = false
			a.causalT.Store(ng, msg.TID)
		}
	}
	return out
}

// rank is a variable's total-order priority: larger priority value wins,
// ties break toward the smaller variable id (the paper: "all ties in
// priorities are broken due to the alphabetical order of variables' ids").
type rank struct {
	p int
	v csp.Var
}

// outranks reports whether a is strictly higher-priority than b.
func (a rank) outranks(b rank) bool {
	if a.p != b.p {
		return a.p > b.p
	}
	return a.v < b.v
}

func (a *Agent) rankOf(v csp.Var) rank {
	if v == a.id {
		return rank{p: a.priority, v: v}
	}
	if a.learning.Reference {
		e, ok := a.view[v]
		if !ok {
			return rank{p: 0, v: v}
		}
		return rank{p: e.prio, v: v}
	}
	// prios[v] is 0 for unknown variables — the same rank an absent view
	// entry yields in the reference representation.
	return rank{p: a.prios[v], v: v}
}

// nogoodRank returns the nogood's priority: the lowest rank among its
// variables excluding the owner's variable. A nogood with no other variable
// (a unary constraint on the owner) outranks everything — it must always be
// respected — signalled by ok=false.
func (a *Agent) nogoodRank(ng csp.Nogood) (rank, bool) {
	var (
		low   rank
		found bool
	)
	for i := 0; i < ng.Len(); i++ {
		v := ng.At(i).Var
		if v == a.id {
			continue
		}
		r := a.rankOf(v)
		if !found || low.outranks(r) {
			low, found = r, true
		}
	}
	return low, found
}

// isHigher reports whether ng is a higher nogood for this agent: its
// priority exceeds the owner variable's priority.
func (a *Agent) isHigher(ng csp.Nogood) bool {
	ngRank, ok := a.nogoodRank(ng)
	if !ok {
		return true // unary constraint on own variable
	}
	return ngRank.outranks(rank{p: a.priority, v: a.id})
}

// ensureHigher refreshes the per-nogood higher/lower classification cache.
// Dense representation only.
func (a *Agent) ensureHigher() {
	all := a.store.All()
	if a.higherValid && a.higherGen == a.store.Gen() {
		return
	}
	if cap(a.higher) < len(all) {
		a.higher = make([]bool, len(all))
	} else {
		a.higher = a.higher[:len(all)]
	}
	for i, ng := range all {
		a.higher[i] = a.isHigher(ng)
	}
	a.higherValid = true
	a.higherGen = a.store.Gen()
}

// checkAgentView is the heart of AWC (Section 2.2). It returns whether the
// agent acted (changed value and/or priority) and the messages to send.
func (a *Agent) checkAgentView() (bool, []sim.Message) {
	// Fast path: is the current value consistent with all higher nogoods?
	// Scans until the first violated higher nogood, charging one check per
	// evaluated nogood.
	if a.consistent() {
		return false, nil
	}

	// Full evaluation: one pass per domain value over the whole store,
	// classifying each nogood as higher or lower and recording violations.
	a.classifyViolations()

	// Candidates repair every higher violation; among them minimize
	// violations of lower nogoods.
	bestIdx := a.chooseMin(len(a.domain),
		func(i int) bool { return len(a.violatedHigher[i]) == 0 },
		func(i int) int { return a.lowerViol[i] })
	if bestIdx >= 0 {
		a.setValue(a.domain[bestIdx])
		return true, a.broadcastOk(nil)
	}

	// Deadend: every value violates some higher nogood.
	a.stats.Deadends++
	var ngMsgs []sim.Message
	if a.learning.Kind != LearnNone {
		learned := a.deriveNogood()
		// Generation statistics count every derivation — Table 4 measures
		// "nogoods generated", and the derivation work happens whether or
		// not the suppression guard below then swallows the result.
		a.stats.NogoodsGenerated++
		key := learned.Key()
		if _, seen := a.generatedKeys[key]; seen {
			a.stats.RedundantGenerations++
		} else {
			a.generatedKeys[key] = struct{}{}
		}
		if a.lastLearned != nil && learned.Equal(*a.lastLearned) {
			// Required for completeness (Section 2.2): regenerating the
			// same nogood means nothing new was learned; do nothing.
			return false, nil
		}
		cp := learned
		a.lastLearned = &cp
		// Record the derivation (causes: the enclosing span plus the store
		// entries the learner consulted). The empty resolvent is recorded
		// too — it is the insolubility proof, the provenance DAG's root.
		a.causalT.Learn(learned)
		if learned.Empty() {
			a.insoluble = true
			return false, nil
		}
		for i := 0; i < learned.Len(); i++ {
			ngMsgs = append(ngMsgs, NogoodMsg{
				Sender:   a.ID(),
				Receiver: sim.AgentID(learned.At(i).Var),
				Nogood:   learned,
			})
		}
	}

	// Raise priority above everything currently in view, then move to the
	// value violating the fewest nogoods overall (higher and lower).
	a.priority = a.maxViewPriority() + 1
	a.higherValid = false
	a.stats.PriorityRaises++

	bestIdx = a.chooseMin(len(a.domain),
		func(int) bool { return true },
		func(i int) int { return len(a.violatedHigher[i]) + a.lowerViol[i] })
	a.setValue(a.domain[bestIdx])
	return true, a.broadcastOk(ngMsgs)
}

// setValue moves the own variable, keeping the dense view's probe slot in
// sync.
func (a *Agent) setValue(val csp.Value) {
	a.value = val
	if !a.learning.Reference {
		a.dv.Assign(a.id, val)
	}
}

// maxViewPriority returns the highest priority in the agent_view, floored
// at the own priority.
func (a *Agent) maxViewPriority() int {
	maxPrio := a.priority
	if a.learning.Reference {
		for _, e := range a.view {
			if e.prio > maxPrio {
				maxPrio = e.prio
			}
		}
		return maxPrio
	}
	// Unknown variables sit at priority 0, which can never exceed the own
	// priority (priorities start at 0 and only rise), so scanning the whole
	// dense slice matches the reference map scan.
	for v, p := range a.prios {
		if csp.Var(v) != a.id && p > maxPrio {
			maxPrio = p
		}
	}
	return maxPrio
}

// consistent reports whether the current value violates no higher nogood,
// charging one check per evaluated nogood (short-circuiting on the first
// violation).
func (a *Agent) consistent() bool {
	if a.learning.Reference {
		return a.consistentRef()
	}
	a.ensureHigher()
	dv := a.dv // holds the agent_view with the own variable at a.value
	for i, ng := range a.store.All() {
		if !a.higher[i] {
			continue
		}
		if nogood.CheckDense(ng, dv, &a.counter) {
			a.store.Bump(i)
			return false
		}
	}
	return true
}

// classifyViolations fills violatedHigher/lowerViol with one full pass per
// domain value over the whole store, charging one check per evaluation.
func (a *Agent) classifyViolations() {
	for i := range a.domain {
		a.violatedHigher[i] = a.violatedHigher[i][:0]
		a.lowerViol[i] = 0
	}
	if a.learning.Reference {
		a.classifyViolationsRef()
		return
	}
	a.ensureHigher()
	dv := a.dv
	for i, ng := range a.store.All() {
		higher := a.higher[i]
		for j, d := range a.domain {
			dv.Assign(a.id, d)
			if nogood.CheckDense(ng, dv, &a.counter) {
				a.store.Bump(i)
				if higher {
					a.violatedHigher[j] = append(a.violatedHigher[j], ng)
				} else {
					a.lowerViol[j]++
				}
			}
		}
	}
	dv.Assign(a.id, a.value) // restore the probe slot
}

// broadcastOk appends an ok? message for every outgoing link to msgs,
// in deterministic (ascending id) order.
func (a *Agent) broadcastOk(msgs []sim.Message) []sim.Message {
	if a.learning.Reference {
		return a.broadcastOkRef(msgs)
	}
	for _, v := range a.links {
		msgs = append(msgs, Ok{
			Sender:   a.ID(),
			Receiver: sim.AgentID(v),
			Value:    a.value,
			Priority: a.priority,
		})
	}
	return msgs
}
