package core

import (
	"fmt"
	"sort"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
)

// Snapshot is an AWC agent's durable state for crash-restart recovery: the
// fields a rebooted node must replay to rejoin a run exactly where its last
// checkpoint left it. View entries are canonically sorted by variable so
// two snapshots of the same state compare equal regardless of the agent's
// internal representation (dense or reference).
type Snapshot struct {
	Value    csp.Value
	Priority int
	// Nogoods is the full store in insertion order: the initial constraints
	// plus everything learned. Kept alongside Store for older consumers;
	// Store is authoritative when populated.
	Nogoods []csp.Nogood
	// Store is the full store state including retention metadata (pinned
	// flags, recency stamps, hit counts), so bounded-store runs resume
	// their eviction decisions exactly where the checkpoint left them.
	Store  nogood.State
	Checks int64
	// ViewVars/ViewVals/ViewPrios are the agent_view, sorted by variable.
	ViewVars  []csp.Var
	ViewVals  []csp.Value
	ViewPrios []int
	// Links are the ok? broadcast targets, sorted.
	Links []csp.Var
	// LastLearned is the duplicate-suppression guard (nil when unset).
	LastLearned *csp.Nogood
	// GeneratedKeys are the keys of every nogood this agent ever derived
	// (the Table 4 redundancy measure), sorted.
	GeneratedKeys []string
	Insoluble     bool
	Stats         Stats
}

var _ sim.Checkpointer = (*Agent)(nil)

// Checkpoint implements sim.Checkpointer.
func (a *Agent) Checkpoint() any {
	s := &Snapshot{
		Value:     a.value,
		Priority:  a.priority,
		Nogoods:   a.store.Snapshot(),
		Store:     a.store.State(),
		Checks:    a.counter.Total(),
		Insoluble: a.insoluble,
		Stats:     a.stats,
	}
	if a.lastLearned != nil {
		cp := *a.lastLearned
		s.LastLearned = &cp
	}
	s.GeneratedKeys = make([]string, 0, len(a.generatedKeys))
	for k := range a.generatedKeys {
		s.GeneratedKeys = append(s.GeneratedKeys, k)
	}
	sort.Strings(s.GeneratedKeys)

	if a.learning.Reference {
		vars := make([]csp.Var, 0, len(a.view))
		for v := range a.view {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		for _, v := range vars {
			e := a.view[v]
			s.ViewVars = append(s.ViewVars, v)
			s.ViewVals = append(s.ViewVals, e.val)
			s.ViewPrios = append(s.ViewPrios, e.prio)
		}
		s.Links = make([]csp.Var, 0, len(a.outLinks))
		for v := range a.outLinks {
			s.Links = append(s.Links, v)
		}
		sort.Slice(s.Links, func(i, j int) bool { return s.Links[i] < s.Links[j] })
		return s
	}
	for v := 0; v < a.dv.Len(); v++ {
		if csp.Var(v) == a.id || !a.dv.Known(csp.Var(v)) {
			continue
		}
		val, _ := a.dv.Lookup(csp.Var(v))
		s.ViewVars = append(s.ViewVars, csp.Var(v))
		s.ViewVals = append(s.ViewVals, val)
		s.ViewPrios = append(s.ViewPrios, a.prios[v])
	}
	s.Links = make([]csp.Var, len(a.links))
	copy(s.Links, a.links)
	return s
}

// Restore implements sim.Checkpointer. The receiver must be a freshly
// constructed (or otherwise same-problem) agent for the same variable; its
// state is replaced wholesale by the snapshot's.
func (a *Agent) Restore(snapshot any) error {
	s, ok := snapshot.(*Snapshot)
	if !ok {
		return fmt.Errorf("core: cannot restore %T into an AWC agent", snapshot)
	}
	if len(s.ViewVars) != len(s.ViewVals) || len(s.ViewVars) != len(s.ViewPrios) {
		return fmt.Errorf("core: corrupt snapshot: view slices of unequal length")
	}
	a.priority = s.Priority
	if s.Store.Nogoods != nil {
		a.store.RestoreState(s.Store)
	} else {
		a.store.Restore(s.Nogoods)
	}
	a.counter.Restore(s.Checks)
	a.insoluble = s.Insoluble
	a.stats = s.Stats
	a.lastLearned = nil
	if s.LastLearned != nil {
		cp := *s.LastLearned
		a.lastLearned = &cp
	}
	a.generatedKeys = make(map[string]struct{}, len(s.GeneratedKeys))
	for _, k := range s.GeneratedKeys {
		a.generatedKeys[k] = struct{}{}
	}

	if a.learning.Reference {
		a.view = make(map[csp.Var]viewEntry, len(s.ViewVars))
		for i, v := range s.ViewVars {
			a.view[v] = viewEntry{val: s.ViewVals[i], prio: s.ViewPrios[i]}
		}
		a.outLinks = make(map[csp.Var]struct{}, len(s.Links))
		for _, v := range s.Links {
			a.outLinks[v] = struct{}{}
		}
		a.value = s.Value
		return nil
	}
	a.dv.Reset()
	for i := range a.prios {
		a.prios[i] = 0
	}
	for i, v := range s.ViewVars {
		a.dv.Assign(v, s.ViewVals[i])
		a.prios[v] = s.ViewPrios[i]
	}
	a.links = a.links[:0]
	for i := range a.linked {
		a.linked[i] = false
	}
	for _, v := range s.Links {
		a.links = append(a.links, v)
		a.linked[v] = true
	}
	a.setValue(s.Value) // also refreshes the dense view's own slot
	a.higherValid = false
	return nil
}
