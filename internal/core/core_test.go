package core

import (
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

func TestLearningKindString(t *testing.T) {
	tests := []struct {
		kind LearningKind
		want string
	}{
		{LearnNone, "No"},
		{LearnResolvent, "Rslv"},
		{LearnMCS, "Mcs"},
		{LearningKind(42), "LearningKind(42)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestLearningName(t *testing.T) {
	tests := []struct {
		l    Learning
		want string
	}{
		{Learning{Kind: LearnResolvent}, "Rslv"},
		{Learning{Kind: LearnMCS}, "Mcs"},
		{Learning{Kind: LearnNone}, "No"},
		{Learning{Kind: LearnResolvent, SizeBound: 3}, "3rdRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 4}, "4thRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 5}, "5thRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 1}, "1stRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 2}, "2ndRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 11}, "11thRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 12}, "12thRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 13}, "13thRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 21}, "21stRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 22}, "22ndRslv"},
		{Learning{Kind: LearnResolvent, SizeBound: 23}, "23rdRslv"},
		{Learning{Kind: LearnResolvent, NoRecord: true}, "Rslv/norec"},
		{Learning{Kind: LearnNone, SizeBound: 3}, "No"},
	}
	for _, tt := range tests {
		if got := tt.l.Name(); got != tt.want {
			t.Errorf("Name(%+v) = %q, want %q", tt.l, got, tt.want)
		}
	}
}

func TestShouldRecord(t *testing.T) {
	small := csp.MustNogood(csp.Lit{Var: 0, Val: 0}, csp.Lit{Var: 1, Val: 1})
	big := csp.MustNogood(
		csp.Lit{Var: 0, Val: 0}, csp.Lit{Var: 1, Val: 1},
		csp.Lit{Var: 2, Val: 0}, csp.Lit{Var: 3, Val: 1},
	)
	tests := []struct {
		name string
		l    Learning
		ng   csp.Nogood
		want bool
	}{
		{"unrestricted records all", Learning{Kind: LearnResolvent}, big, true},
		{"within bound", Learning{Kind: LearnResolvent, SizeBound: 3}, small, true},
		{"over bound", Learning{Kind: LearnResolvent, SizeBound: 3}, big, false},
		{"at bound", Learning{Kind: LearnResolvent, SizeBound: 4}, big, true},
		{"norec records nothing", Learning{Kind: LearnResolvent, NoRecord: true}, small, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.l.shouldRecord(tt.ng); got != tt.want {
				t.Errorf("shouldRecord = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRankOutranks(t *testing.T) {
	tests := []struct {
		a, b rank
		want bool
	}{
		{rank{p: 2, v: 5}, rank{p: 1, v: 0}, true}, // higher priority wins
		{rank{p: 1, v: 0}, rank{p: 2, v: 5}, false},
		{rank{p: 1, v: 2}, rank{p: 1, v: 5}, true}, // tie: smaller id wins
		{rank{p: 1, v: 5}, rank{p: 1, v: 2}, false},
		{rank{p: 0, v: 3}, rank{p: 0, v: 3}, false}, // equal: not strictly higher
	}
	for _, tt := range tests {
		if got := tt.a.outranks(tt.b); got != tt.want {
			t.Errorf("%v.outranks(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// colorValue names for the Figure 1 test.
const (
	red    csp.Value = 0
	yellow csp.Value = 1
	green  csp.Value = 2
)

// figure1Agent reconstructs the worked example of Section 3.2: agent x5
// (here variable 4) with arc constraints to x1..x4 (variables 0..3), the
// received ternary nogood ((x3,g)(x4,r)(x5,y)), agent_view x1=r, x2=y,
// x3=g, x4=r with priorities 5, 3, 4, 2, and own priority 0.
func figure1Agent(t *testing.T, learning Learning) (*Agent, []sim.Message) {
	t.Helper()
	p := csp.NewProblemUniform(5, 3)
	for other := csp.Var(0); other < 4; other++ {
		if err := p.AddNotEqual(other, 4); err != nil {
			t.Fatal(err)
		}
	}
	a := NewAgent(4, p, red, learning)

	in := []sim.Message{
		Ok{Sender: 0, Receiver: 4, Value: red, Priority: 5},
		Ok{Sender: 1, Receiver: 4, Value: yellow, Priority: 3},
		Ok{Sender: 2, Receiver: 4, Value: green, Priority: 4},
		Ok{Sender: 3, Receiver: 4, Value: red, Priority: 2},
		NogoodMsg{Sender: 3, Receiver: 4, Nogood: csp.MustNogood(
			csp.Lit{Var: 2, Val: green},
			csp.Lit{Var: 3, Val: red},
			csp.Lit{Var: 4, Val: yellow},
		)},
	}
	return a, in
}

// TestFigure1Resolvent reproduces the paper's worked example end to end:
// the deadend must produce exactly the resolvent ((x1,r)(x2,y)(x3,g)) —
// here {(0,r),(1,y),(2,g)} — sent to agents 0, 1, and 2, with the priority
// raised above every view entry.
func TestFigure1Resolvent(t *testing.T) {
	a, in := figure1Agent(t, Learning{Kind: LearnResolvent})
	out := a.Step(in)

	want := csp.MustNogood(
		csp.Lit{Var: 0, Val: red},
		csp.Lit{Var: 1, Val: yellow},
		csp.Lit{Var: 2, Val: green},
	)
	var nogoodTargets []sim.AgentID
	for _, m := range out {
		nm, ok := m.(NogoodMsg)
		if !ok {
			continue
		}
		if !nm.Nogood.Equal(want) {
			t.Errorf("sent nogood %v, want %v", nm.Nogood, want)
		}
		nogoodTargets = append(nogoodTargets, nm.Receiver)
	}
	if len(nogoodTargets) != 3 {
		t.Fatalf("nogood sent to %v, want agents 0,1,2", nogoodTargets)
	}
	for i, wantTo := range []sim.AgentID{0, 1, 2} {
		if nogoodTargets[i] != wantTo {
			t.Errorf("nogood target %d = %d, want %d", i, nogoodTargets[i], wantTo)
		}
	}
	if a.Priority() != 6 {
		t.Errorf("priority = %d, want 6 (1 + max view priority 5)", a.Priority())
	}
	st := a.Stats()
	if st.Deadends != 1 || st.NogoodsGenerated != 1 {
		t.Errorf("stats = %+v", st)
	}
	// ok? messages must go to every neighbor with the new priority.
	okCount := 0
	for _, m := range out {
		if ok, isOk := m.(Ok); isOk {
			okCount++
			if ok.Priority != 6 {
				t.Errorf("ok priority = %d, want 6", ok.Priority)
			}
		}
	}
	if okCount != 4 {
		t.Errorf("ok messages = %d, want 4", okCount)
	}
}

// TestFigure1MCS: on the same deadend, mcs-based learning must find a
// conflict set no larger than the resolvent (here the resolvent is already
// minimal, so the same nogood) while charging strictly more checks.
func TestFigure1MCS(t *testing.T) {
	rslv, inR := figure1Agent(t, Learning{Kind: LearnResolvent})
	rslv.Step(inR)
	mcs, inM := figure1Agent(t, Learning{Kind: LearnMCS})
	out := mcs.Step(inM)

	want := csp.MustNogood(
		csp.Lit{Var: 0, Val: red},
		csp.Lit{Var: 1, Val: yellow},
		csp.Lit{Var: 2, Val: green},
	)
	found := false
	for _, m := range out {
		if nm, ok := m.(NogoodMsg); ok {
			found = true
			if nm.Nogood.Len() > want.Len() {
				t.Errorf("mcs nogood %v larger than resolvent %v", nm.Nogood, want)
			}
		}
	}
	if !found {
		t.Fatalf("mcs deadend sent no nogood")
	}
	if mcs.Checks() <= rslv.Checks() {
		t.Errorf("mcs charged %d checks, resolvent %d; mcs identification must cost more",
			mcs.Checks(), rslv.Checks())
	}
}

// TestFigure1NoLearning: with learning off the deadend must still raise the
// priority and move, but send no nogood.
func TestFigure1NoLearning(t *testing.T) {
	a, in := figure1Agent(t, Learning{Kind: LearnNone})
	out := a.Step(in)
	for _, m := range out {
		if _, isNogood := m.(NogoodMsg); isNogood {
			t.Fatalf("no-learning agent sent a nogood")
		}
	}
	if a.Priority() != 6 {
		t.Errorf("priority = %d, want 6", a.Priority())
	}
	if a.Stats().NogoodsGenerated != 0 {
		t.Errorf("generated = %d, want 0", a.Stats().NogoodsGenerated)
	}
}
