package core

// This file is the reference (map-backed) agent-view representation: the
// first, paper-faithful implementation, preserved verbatim and selected by
// Learning.Reference. It exists for verification, not for speed — the
// cross-representation equivalence tests run every problem family through
// both representations and require bit-identical traces, metrics, and
// charged check counts, and the benchmark harness uses it as the "before"
// side of each before/after pair in BENCH_2.json.

import (
	"sort"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
)

// viewEntry is what an agent knows about another agent's variable.
type viewEntry struct {
	val  csp.Value
	prio int
}

// probeView is the assignment "my agent_view with my variable set to val".
// Passing it to nogood.Check boxes it into an Assignment interface value,
// which is exactly the per-check allocation the dense representation
// eliminates.
type probeView struct {
	a   *Agent
	val csp.Value
}

var _ csp.Assignment = probeView{}

// Lookup implements csp.Assignment.
func (p probeView) Lookup(v csp.Var) (csp.Value, bool) {
	if v == p.a.id {
		return p.val, true
	}
	e, ok := p.a.view[v]
	if !ok {
		return 0, false
	}
	return e.val, true
}

// consistentRef is the reference fast path: scan higher nogoods against the
// current value, charging one check per evaluated nogood.
func (a *Agent) consistentRef() bool {
	current := probeView{a: a, val: a.value}
	for pos, ng := range a.store.All() {
		if !a.isHigher(ng) {
			continue
		}
		if nogood.Check(ng, current, &a.counter) {
			a.store.Bump(pos)
			return false
		}
	}
	return true
}

// classifyViolationsRef is the reference full evaluation; caller has already
// reset the scratch slices.
func (a *Agent) classifyViolationsRef() {
	for pos, ng := range a.store.All() {
		higher := a.isHigher(ng)
		for i, d := range a.domain {
			if nogood.Check(ng, probeView{a: a, val: d}, &a.counter) {
				a.store.Bump(pos)
				if higher {
					a.violatedHigher[i] = append(a.violatedHigher[i], ng)
				} else {
					a.lowerViol[i]++
				}
			}
		}
	}
}

// broadcastOkRef collects the outgoing links from the map and sorts them on
// every broadcast.
func (a *Agent) broadcastOkRef(msgs []sim.Message) []sim.Message {
	targets := make([]csp.Var, 0, len(a.outLinks))
	for v := range a.outLinks {
		targets = append(targets, v)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, v := range targets {
		msgs = append(msgs, Ok{
			Sender:   a.ID(),
			Receiver: sim.AgentID(v),
			Value:    a.value,
			Priority: a.priority,
		})
	}
	return msgs
}

// isConflictSetRef is the reference conflict-set test: materialize the
// candidate into a fresh map assignment and probe it under an Override. Each
// evaluation charges one check.
func (a *Agent) isConflictSetRef(set csp.Nogood) bool {
	base := csp.NewMapAssignment(set.Lits()...)
	for i, d := range a.domain {
		probe := csp.Override{Base: base, Var: a.id, Val: d}
		hit := false
		if a.learning.MCSRestrictScan {
			for _, ng := range a.violatedHigher[i] {
				if nogood.Check(ng, probe, &a.counter) {
					hit = true
					break
				}
			}
		} else {
			for _, ng := range a.store.All() {
				if !a.isHigher(ng) {
					continue
				}
				if nogood.Check(ng, probe, &a.counter) {
					hit = true
					break
				}
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// resolventRef is the reference resolvent assembly: a chain of Union calls,
// each allocating a fresh merged literal slice.
func (a *Agent) resolventRef() csp.Nogood {
	result := csp.MustNogood()
	for i := range a.domain {
		selected := a.selectNogoodForValue(a.violatedHigher[i])
		a.causalT.Consult(selected)
		union, err := result.Union(selected.Without(a.id))
		if err != nil {
			// Impossible: every selected nogood is violated under the same
			// agent_view, so shared variables agree on their values.
			panic("core: inconsistent resolvent operands: " + err.Error())
		}
		result = union
	}
	return result
}
