package core

import (
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
)

// This file implements the learning methods of Sections 3 and 4.1. All of
// them start from the per-value violated-higher-nogood sets that
// checkAgentView computed for the deadend (a.violatedHigher, indexed like
// a.domain), so derivation itself re-checks nothing it already knows;
// mcs-based learning pays extra checks for every subset test it performs.
//
// Derivation has a dense and a reference path, like the agent view itself
// (see refpath.go): the dense path gathers resolvent literals into a reused
// scratch slice and tests conflict-set candidates against a reused dense
// view, where the reference path chains Union allocations and builds a map
// assignment per candidate. Both charge identical checks and derive
// identical nogoods.

// deriveNogood dispatches on the configured learning kind. It must only be
// called at a deadend: every a.violatedHigher[i] is non-empty.
func (a *Agent) deriveNogood() csp.Nogood {
	resolvent := a.resolventNogood()
	if a.learning.Kind == LearnMCS {
		return a.minimumConflictSet(resolvent)
	}
	return resolvent
}

// resolventNogood is Section 3.1: for each domain value select one violated
// higher nogood — the smallest, ties broken toward the highest nogood
// priority — then union the selections with the own variable's literals
// removed. The result is a resolvent: it is violated under the current
// agent_view and mentions only other agents' variables.
func (a *Agent) resolventNogood() csp.Nogood {
	if a.learning.Reference {
		return a.resolventRef()
	}
	// Gather every selected literal into the scratch slice and canonicalize
	// once: duplicates collapse in MustNogood, and a contradiction is
	// impossible because every selected nogood is violated under the same
	// agent_view (MustNogood would panic, as the reference Union chain
	// does).
	a.litScratch = a.litScratch[:0]
	for i := range a.domain {
		selected := a.selectNogoodForValue(a.violatedHigher[i])
		// The selected entries are the derivation's cause set; the next
		// Learn event lists them. Nil-checked inside the tracer.
		a.causalT.Consult(selected)
		for j := 0; j < selected.Len(); j++ {
			if l := selected.At(j); l.Var != a.id {
				a.litScratch = append(a.litScratch, l)
			}
		}
	}
	return csp.MustNogood(a.litScratch...)
}

// selectNogoodForValue picks the smallest nogood; ties break toward the
// highest nogood priority ("a highly-prioritized variable generally makes a
// strong commitment to the current value, so we should notify the agent with
// such a variable as early as possible if such a value is wrong").
func (a *Agent) selectNogoodForValue(violated []csp.Nogood) csp.Nogood {
	best := violated[0]
	bestRank, bestHasRank := a.nogoodRank(best)
	for _, ng := range violated[1:] {
		switch {
		case ng.Len() < best.Len():
			best = ng
			bestRank, bestHasRank = a.nogoodRank(best)
		case ng.Len() == best.Len():
			r, hasRank := a.nogoodRank(ng)
			// A rank-less nogood (unary on the own variable) outranks all.
			if !bestHasRank {
				continue
			}
			if !hasRank || r.outranks(bestRank) {
				best = ng
				bestRank, bestHasRank = r, hasRank
			}
		}
	}
	return best
}

// minimumConflictSet implements mcs-based learning: search subsets of the
// resolvent "from larger subsets to smaller subsets" for the smallest one
// that is still a conflict set. Conflict-set monotonicity (a superset of a
// conflict set is a conflict set) makes stopping sound: if no subset of size
// s works, no smaller subset can.
//
// For resolvents up to the configured exhaustive limit all subsets of each
// size are enumerated, per the paper's description; larger resolvents fall
// back to greedy destructive minimization (drop a literal, keep the drop if
// the remainder is still a conflict set), which yields a minimal — not
// necessarily minimum — conflict set at O(len²·tests) cost. Both paths
// charge one nogood check per nogood evaluation, which is what makes Mcs
// maxcck expensive in Tables 1–3.
func (a *Agent) minimumConflictSet(resolvent csp.Nogood) csp.Nogood {
	limit := a.learning.MCSExhaustiveLimit
	if limit <= 0 {
		limit = DefaultMCSExhaustiveLimit
	}
	if resolvent.Len() > limit {
		return a.greedyConflictSet(resolvent)
	}

	lits := resolvent.Lits()
	best := resolvent
	for size := resolvent.Len() - 1; size >= 0; size-- {
		found := false
		forEachSubset(len(lits), size, func(idxs []int) bool {
			a.subScratch = a.subScratch[:0]
			for _, i := range idxs {
				a.subScratch = append(a.subScratch, lits[i])
			}
			if a.conflictSetLits(a.subScratch) {
				// Materialize the winning candidate only on a hit; the dense
				// path tests candidates straight from the scratch slice.
				best = csp.MustNogood(a.subScratch...)
				found = true
				return false // first hit at this size wins; move down a size
			}
			return true
		})
		if !found {
			break
		}
	}
	return best
}

// greedyConflictSet drops literals one at a time while the remainder stays a
// conflict set.
func (a *Agent) greedyConflictSet(resolvent csp.Nogood) csp.Nogood {
	current := resolvent
	for i := 0; i < current.Len(); {
		candidate := current.WithoutAt(i)
		if a.conflictSetNogood(candidate) {
			current = candidate
			// Re-test position i, which now holds the next literal.
		} else {
			i++
		}
	}
	return current
}

// conflictSetLits tests a candidate given as a literal slice (already
// variable-deduplicated, any order).
func (a *Agent) conflictSetLits(lits []csp.Lit) bool {
	if a.learning.Reference {
		return a.isConflictSetRef(csp.MustNogood(lits...))
	}
	return a.isConflictSetDense(lits)
}

// conflictSetNogood tests a candidate given as a Nogood.
func (a *Agent) conflictSetNogood(ng csp.Nogood) bool {
	if a.learning.Reference {
		return a.isConflictSetRef(ng)
	}
	a.subScratch = a.subScratch[:0]
	for i := 0; i < ng.Len(); i++ {
		a.subScratch = append(a.subScratch, ng.At(i))
	}
	return a.isConflictSetDense(a.subScratch)
}

// isConflictSetDense reports whether the partial assignment expressed by
// lits prohibits every domain value: for each value, some higher nogood is
// violated under lits ∧ (own variable = value). Each evaluation charges one
// check.
//
// By default the test scans the agent's whole store of higher nogoods —
// the straightforward implementation of the published method, whose cost is
// exactly what makes Mcs expensive in Tables 1–3 ("the cost of identifying
// such a set is usually very high"). Since the candidate is a subset of the
// agent_view, only nogoods already violated at the deadend can ever fire;
// Learning.MCSRestrictScan enables that derived optimization as an ablation
// (see BenchmarkAblationMCSScan).
//
// The candidate lives in the reused mcsView scratch (reset is one memclr),
// so a test allocates nothing — unlike the reference path's fresh map
// assignment per candidate (refpath.go).
func (a *Agent) isConflictSetDense(lits []csp.Lit) bool {
	mv := a.mcsView
	mv.Reset()
	for _, l := range lits {
		mv.Assign(l.Var, l.Val)
	}
	if !a.learning.MCSRestrictScan {
		a.ensureHigher()
	}
	for i, d := range a.domain {
		mv.Assign(a.id, d)
		hit := false
		if a.learning.MCSRestrictScan {
			for _, ng := range a.violatedHigher[i] {
				if nogood.CheckDense(ng, mv, &a.counter) {
					hit = true
					break
				}
			}
		} else {
			for k, ng := range a.store.All() {
				if !a.higher[k] {
					continue
				}
				if nogood.CheckDense(ng, mv, &a.counter) {
					hit = true
					break
				}
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// forEachSubset enumerates all size-k subsets of {0..n-1} in lexicographic
// order, invoking fn with the index slice (reused between calls). fn returns
// false to stop the enumeration.
func forEachSubset(n, k int, fn func(idxs []int) bool) {
	if k > n || k < 0 {
		return
	}
	idxs := make([]int, k)
	for i := range idxs {
		idxs[i] = i
	}
	for {
		if !fn(idxs) {
			return
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idxs[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idxs[i]++
		for j := i + 1; j < k; j++ {
			idxs[j] = idxs[j-1] + 1
		}
	}
}
