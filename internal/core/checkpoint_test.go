package core

import (
	"reflect"
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

// hardProblem is a 4-variable, 3-color problem dense enough to force
// deadends (and thus learning, priority raises, and link additions) within
// a few cycles.
func hardProblem(t *testing.T) *csp.Problem {
	t.Helper()
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	return p
}

func runAgents(t *testing.T, p *csp.Problem, learning Learning, cycles int) []*Agent {
	t.Helper()
	agents := make([]*Agent, p.NumVars())
	simAgents := make([]sim.Agent, p.NumVars())
	for v := range agents {
		agents[v] = NewAgent(csp.Var(v), p, 0, learning)
		simAgents[v] = agents[v]
	}
	if _, err := sim.Run(p, simAgents, sim.Options{MaxCycles: cycles}); err != nil {
		t.Fatal(err)
	}
	return agents
}

func testCheckpointRoundTrip(t *testing.T, learning Learning) {
	p := hardProblem(t)
	agents := runAgents(t, p, learning, 6)
	for v, a := range agents {
		cp := a.Checkpoint()
		fresh := NewAgent(csp.Var(v), p, 0, learning)
		if err := fresh.Restore(cp); err != nil {
			t.Fatalf("agent %d: restore: %v", v, err)
		}
		if got := fresh.Checkpoint(); !reflect.DeepEqual(got, cp) {
			t.Fatalf("agent %d: restored checkpoint differs:\n got %+v\nwant %+v", v, got, cp)
		}
		if fresh.CurrentValue() != a.CurrentValue() || fresh.Priority() != a.Priority() ||
			fresh.Checks() != a.Checks() || fresh.StoreSize() != a.StoreSize() {
			t.Fatalf("agent %d: restored scalars differ", v)
		}
		// The restored agent must behave identically: same batch, same output.
		batch := []sim.Message{Ok{Sender: sim.AgentID((v + 1) % p.NumVars()), Receiver: sim.AgentID(v), Value: 2, Priority: 5}}
		out1 := a.Step(batch)
		out2 := fresh.Step(batch)
		if !reflect.DeepEqual(out1, out2) {
			t.Fatalf("agent %d: restored agent diverged on next step:\n got %+v\nwant %+v", v, out2, out1)
		}
		if !reflect.DeepEqual(fresh.Checkpoint(), a.Checkpoint()) {
			t.Fatalf("agent %d: state diverged after identical step", v)
		}
	}
}

func TestCheckpointRoundTripDense(t *testing.T) {
	testCheckpointRoundTrip(t, Learning{Kind: LearnResolvent})
}

func TestCheckpointRoundTripReference(t *testing.T) {
	testCheckpointRoundTrip(t, Learning{Kind: LearnResolvent, Reference: true})
}

func TestCheckpointRoundTripSizeBounded(t *testing.T) {
	testCheckpointRoundTrip(t, Learning{Kind: LearnResolvent, SizeBound: 3})
}

// TestCheckpointCanonicalAcrossRepresentations pins that the dense and
// reference representations checkpoint to the same canonical snapshot after
// identical runs, so a node may restore a checkpoint regardless of which
// representation wrote it.
func TestCheckpointCanonicalAcrossRepresentations(t *testing.T) {
	p := hardProblem(t)
	dense := runAgents(t, p, Learning{Kind: LearnResolvent}, 6)
	ref := runAgents(t, p, Learning{Kind: LearnResolvent, Reference: true}, 6)
	// Nogoods derived by Union/Without defer key interning, so structurally
	// equal snapshots can differ in the unexported cached key; rebuild every
	// nogood to compare canonical forms.
	normalize := func(s *Snapshot) {
		for i, ng := range s.Nogoods {
			s.Nogoods[i] = csp.MustNogood(ng.Lits()...)
		}
		for i, ng := range s.Store.Nogoods {
			s.Store.Nogoods[i] = csp.MustNogood(ng.Lits()...)
		}
		if s.LastLearned != nil {
			cp := csp.MustNogood(s.LastLearned.Lits()...)
			s.LastLearned = &cp
		}
	}
	for v := range dense {
		d, r := dense[v].Checkpoint().(*Snapshot), ref[v].Checkpoint().(*Snapshot)
		normalize(d)
		normalize(r)
		if !reflect.DeepEqual(d, r) {
			t.Fatalf("agent %d: dense and reference snapshots differ:\ndense %+v\nref   %+v", v, d, r)
		}
	}
}

func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	p := hardProblem(t)
	a := NewAgent(0, p, 0, Learning{Kind: LearnResolvent})
	if err := a.Restore("nonsense"); err == nil {
		t.Fatal("restore accepted a foreign snapshot")
	}
}
