module github.com/discsp/discsp

go 1.22
