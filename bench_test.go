// Benchmarks regenerating the paper's evaluation: one benchmark per table
// (Tables 1–10) and one for Figure 2, at a reduced but shape-preserving
// scale, plus ablation and micro benchmarks for the design choices called
// out in DESIGN.md.
//
// Each table benchmark runs its experiment grid once per iteration and
// reports the paper's measures as custom metrics, named
// "<measure>:<algorithm>/n=<size>" (cycles and nogood checks per trial).
// Paper-scale runs are the domain of cmd/dcspbench; these benchmarks keep
// `go test -bench=.` affordable while still reproducing who-wins-where.
package discsp_test

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/discsp/discsp"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/experiments"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
)

// benchScale trades the paper's 100 trials per cell for 4, and evaluates
// each family at a single size chosen so every paper comparison stays
// visible (the forced-SAT family needs n≥50 for the no-learning gap).
func benchScale(kind experiments.ProblemKind) experiments.Scale {
	n := 40
	if kind == experiments.D3S {
		n = 50
	}
	return experiments.Scale{Ns: []int{n}, Instances: 2, Inits: 2}
}

func tableKind(num int) experiments.ProblemKind {
	switch num {
	case 1, 5, 8:
		return experiments.D3C
	case 2, 6, 9:
		return experiments.D3S
	default:
		return experiments.D3S1
	}
}

// benchTable runs one paper table per iteration and reports its cells.
func benchTable(b *testing.B, num int) {
	b.Helper()
	scale := benchScale(tableKind(num))
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.Tables(num, scale)
		if err != nil {
			b.Fatalf("table %d: %v", num, err)
		}
		last = t
	}
	for _, cell := range last.Cells {
		label := fmt.Sprintf("%s/n=%d", cell.Algorithm, cell.N)
		b.ReportMetric(cell.Cycle, "cycles:"+label)
		b.ReportMetric(cell.MaxCCK, "maxcck:"+label)
		if num == 4 {
			b.ReportMetric(cell.Redundant, "redundant:"+label)
		}
	}
}

// BenchmarkTable1 regenerates Table 1: learning methods (Rslv, Mcs, No) on
// distributed 3-coloring problems.
func BenchmarkTable1(b *testing.B) { benchTable(b, 1) }

// BenchmarkTable1SerialVsParallel pairs the serial harness against the
// worker pool on a Table-1-sized cell grid: identical trials, identical
// aggregates, so the wall-clock ratio is the pool's speedup (≈ the core
// count on a multi-core runner, 1× on a single core).
func BenchmarkTable1SerialVsParallel(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scale := benchScale(experiments.D3C)
			scale.Workers = workers
			var last *experiments.Table
			for i := 0; i < b.N; i++ {
				t, err := experiments.Tables(1, scale)
				if err != nil {
					b.Fatal(err)
				}
				last = t
			}
			b.ReportMetric(float64(len(last.Cells)), "cells")
		})
	}
}

// BenchmarkRunCellSerialVsParallel is the single-cell companion pair: one
// family × size × algorithm grid of independently seeded trials.
func BenchmarkRunCellSerialVsParallel(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scale := experiments.Scale{Ns: []int{40}, Instances: 2, Inits: 4, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunCell(experiments.D3C, 40,
					experiments.AWC(core.Learning{Kind: core.LearnResolvent}), scale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 regenerates Table 2: learning methods on distributed 3SAT
// problems (3SAT-GEN style).
func BenchmarkTable2(b *testing.B) { benchTable(b, 2) }

// BenchmarkTable3 regenerates Table 3: learning methods on distributed 3SAT
// problems (3ONESAT-GEN style).
func BenchmarkTable3(b *testing.B) { benchTable(b, 3) }

// BenchmarkTable4 regenerates Table 4: redundant nogood generation with and
// without recording.
func BenchmarkTable4(b *testing.B) { benchTable(b, 4) }

// BenchmarkTable5 regenerates Table 5: size-bounded resolvent learning on
// distributed 3-coloring problems.
func BenchmarkTable5(b *testing.B) { benchTable(b, 5) }

// BenchmarkTable6 regenerates Table 6: size-bounded resolvent learning on
// distributed 3SAT problems (3SAT-GEN style).
func BenchmarkTable6(b *testing.B) { benchTable(b, 6) }

// BenchmarkTable7 regenerates Table 7: size-bounded resolvent learning on
// distributed 3SAT problems (3ONESAT-GEN style).
func BenchmarkTable7(b *testing.B) { benchTable(b, 7) }

// BenchmarkTable8 regenerates Table 8: AWC+3rdRslv vs DB on distributed
// 3-coloring problems.
func BenchmarkTable8(b *testing.B) { benchTable(b, 8) }

// BenchmarkTable9 regenerates Table 9: AWC+5thRslv vs DB on distributed
// 3SAT problems (3SAT-GEN style).
func BenchmarkTable9(b *testing.B) { benchTable(b, 9) }

// BenchmarkTable10 regenerates Table 10: AWC+4thRslv vs DB on distributed
// 3SAT problems (3ONESAT-GEN style).
func BenchmarkTable10(b *testing.B) { benchTable(b, 10) }

// BenchmarkFigure2 regenerates Figure 2: estimated total time vs
// communication delay for AWC+kthRslv and DB on the single-solution family,
// reporting the crossover delay beyond which AWC is estimated cheaper.
func BenchmarkFigure2(b *testing.B) {
	scale := experiments.Scale{Instances: 2, Inits: 2}
	var last *experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure2(experiments.D3S1, 40, nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	b.ReportMetric(last.Crossover, "crossover-delay")
	b.ReportMetric(last.AWCCycle, "cycles:AWC")
	b.ReportMetric(last.DBCycle, "cycles:DB")
	b.ReportMetric(last.AWCMaxCCK, "maxcck:AWC")
	b.ReportMetric(last.DBMaxCCK, "maxcck:DB")
}

// BenchmarkAblationMCSScan compares the paper-faithful mcs conflict-set
// test (scanning the whole store of higher nogoods) against the derived
// optimization that scans only deadend-violated nogoods. Both must produce
// identical search behaviour (cycles); the ablation shows the check-count
// gap is pure identification cost.
func BenchmarkAblationMCSScan(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		learning core.Learning
	}{
		{"FullScan", core.Learning{Kind: core.LearnMCS}},
		{"RestrictedScan", core.Learning{Kind: core.LearnMCS, MCSRestrictScan: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles, maxcck float64
			for i := 0; i < b.N; i++ {
				cell, err := experiments.RunCell(experiments.D3C, 40, experiments.AWC(cfg.learning), experiments.Scale{
					Ns: []int{40}, Instances: 2, Inits: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles, maxcck = cell.Cycle, cell.MaxCCK
			}
			b.ReportMetric(cycles, "cycles")
			b.ReportMetric(maxcck, "maxcck")
		})
	}
}

// BenchmarkAblationMCSExhaustiveLimit sweeps the exhaustive-search cap of
// mcs learning (above the cap, greedy minimization takes over).
func BenchmarkAblationMCSExhaustiveLimit(b *testing.B) {
	for _, limit := range []int{1, 4, 10} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			var maxcck float64
			for i := 0; i < b.N; i++ {
				cell, err := experiments.RunCell(experiments.D3C, 40,
					experiments.AWC(core.Learning{Kind: core.LearnMCS, MCSExhaustiveLimit: limit}),
					experiments.Scale{Ns: []int{40}, Instances: 2, Inits: 2})
				if err != nil {
					b.Fatal(err)
				}
				maxcck = cell.MaxCCK
			}
			b.ReportMetric(maxcck, "maxcck")
		})
	}
}

// BenchmarkSolveSyncVsAsync compares wall-clock of the synchronous
// simulator against the goroutine-per-agent runtime on one instance.
func BenchmarkSolveSyncVsAsync(b *testing.B) {
	inst, err := discsp.GenerateColoring(40, 108, 3, 21)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Sync", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := discsp.Solve(inst.Problem, discsp.Options{InitialSeed: 22})
			if err != nil || !res.Solved {
				b.Fatalf("res=%+v err=%v", res, err)
			}
		}
	})
	b.Run("Async", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := discsp.SolveAsync(inst.Problem, discsp.Options{InitialSeed: 22})
			if err != nil || !res.Solved {
				b.Fatalf("res=%+v err=%v", res, err)
			}
		}
	})
}

// BenchmarkNogoodCheck measures the costed evaluation primitive that the
// maxcck metric counts.
func BenchmarkNogoodCheck(b *testing.B) {
	ng := csp.MustNogood(
		csp.Lit{Var: 1, Val: 0}, csp.Lit{Var: 5, Val: 1}, csp.Lit{Var: 9, Val: 2},
	)
	a := csp.SliceAssignment{0, 0, 0, 0, 0, 1, 0, 0, 0, 2}
	var c nogood.Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nogood.Check(ng, a, &c)
	}
}

// benchProbe reproduces the reference representation's probe: a map-backed
// view plus the own variable's hypothetical value, boxed into the
// Assignment interface on every Check call (one heap allocation per check —
// the cost the dense representation eliminates).
type benchProbe struct {
	view map[csp.Var]csp.Value
	own  csp.Var
	val  csp.Value
}

func (p benchProbe) Lookup(v csp.Var) (csp.Value, bool) {
	if v == p.own {
		return p.val, true
	}
	val, ok := p.view[v]
	return val, ok
}

// BenchmarkProbeViewCheckLoop measures the agent hot loop: evaluate every
// stored nogood against the agent_view for each domain value. The ref
// variant is the map-backed probe of the reference representation; the
// dense variant runs CheckDense against a DenseView. Same charged checks,
// different machine cost — this is the before/after pair behind the
// tentpole's allocs-per-check claim.
func BenchmarkProbeViewCheckLoop(b *testing.B) {
	inst, err := gen.Coloring(40, 108, 3, 7)
	if err != nil {
		b.Fatal(err)
	}
	p := inst.Problem
	const own = csp.Var(0)
	store := nogood.NewFromSlice(p.NogoodsOf(own))
	domain := p.Domain(own)
	neighbors := p.Neighbors(own)

	b.Run("ref", func(b *testing.B) {
		view := make(map[csp.Var]csp.Value, len(neighbors))
		for _, nb := range neighbors {
			view[nb] = 1
		}
		var c nogood.Counter
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range domain {
				probe := benchProbe{view: view, own: own, val: d}
				for _, ng := range store.All() {
					nogood.Check(ng, probe, &c)
				}
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		dv := csp.NewDenseView(p.NumVars())
		for _, nb := range neighbors {
			dv.Assign(nb, 1)
		}
		var c nogood.Counter
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range domain {
				dv.Assign(own, d)
				for _, ng := range store.All() {
					nogood.CheckDense(ng, dv, &c)
				}
			}
		}
	})
	// dense+telemetry runs the identical loop on a store carrying live
	// telemetry hooks (the -telemetry configuration): the checking path never
	// touches them, so allocs/op must stay at the dense variant's zero. This
	// is the tentpole's inertness claim at the machine level — metrics hang
	// off mutation edges (Add/Restore), never the per-check hot loop.
	b.Run("dense+telemetry", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		instrumented := nogood.NewFromSlice(p.NogoodsOf(own))
		instrumented.Instrument(telemetry.StoreMetrics{
			Size:      reg.Gauge(telemetry.Name("discsp_store_nogoods", "agent", "0")),
			Lengths:   reg.Histogram(telemetry.Name("discsp_learned_nogood_len", "agent", "0"), telemetry.NogoodLenBuckets),
			Evictions: reg.Counter(telemetry.Name("discsp_store_evictions", "agent", "0")),
		})
		dv := csp.NewDenseView(p.NumVars())
		for _, nb := range neighbors {
			dv.Assign(nb, 1)
		}
		var c nogood.Counter
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range domain {
				dv.Assign(own, d)
				for _, ng := range instrumented.All() {
					nogood.CheckDense(ng, dv, &c)
				}
			}
		}
	})
}

// refAddPruning is the seed's unindexed AddPruning: linear dup scan via the
// key map is replaced here by a linear key scan plus the full subset scan
// and index rebuild the seed performed. It exists only as the benchmark's
// "before" side.
type refPruneStore struct {
	ngs   []csp.Nogood
	index map[string]int
}

func (s *refPruneStore) addPruning(ng csp.Nogood, c *nogood.Counter) (bool, int) {
	if _, dup := s.index[ng.Key()]; dup {
		return false, 0
	}
	if c != nil {
		c.Add(len(s.ngs))
	}
	removed := 0
	keep := s.ngs[:0]
	for _, stored := range s.ngs {
		if ng.SubsetOf(stored) {
			removed++
			continue
		}
		keep = append(keep, stored)
	}
	s.ngs = append(keep, ng)
	for k := range s.index {
		delete(s.index, k)
	}
	for i, stored := range s.ngs {
		s.index[stored.Key()] = i
	}
	return true, removed
}

// pruningWorkload is a chain of inserts exercising both outcomes: supersets
// recorded first, then the shorter nogoods that prune them.
func pruningWorkload() []csp.Nogood {
	var ngs []csp.Nogood
	for base := csp.Var(0); base < 30; base++ {
		ngs = append(ngs,
			csp.MustNogood(csp.Lit{Var: base, Val: 0}, csp.Lit{Var: base + 1, Val: 0},
				csp.Lit{Var: base + 2, Val: 0}, csp.Lit{Var: base + 3, Val: 0}),
			csp.MustNogood(csp.Lit{Var: base, Val: 0}, csp.Lit{Var: base + 1, Val: 0},
				csp.Lit{Var: base + 2, Val: 0}),
			csp.MustNogood(csp.Lit{Var: base + 1, Val: 0}, csp.Lit{Var: base + 2, Val: 0}),
		)
	}
	return ngs
}

// BenchmarkStoreAddPruning pairs the seed's linear-scan AddPruning (ref)
// against the indexed store (dense). Both charge identical Counter units;
// the indexes only cut the uncharged machine work (subset tests against
// non-candidates, full key-map rebuilds).
func BenchmarkStoreAddPruning(b *testing.B) {
	workload := pruningWorkload()
	b.Run("ref", func(b *testing.B) {
		var c nogood.Counter
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := &refPruneStore{index: make(map[string]int)}
			for _, ng := range workload {
				s.addPruning(ng, &c)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		var c nogood.Counter
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := nogood.New()
			for _, ng := range workload {
				s.AddPruning(ng, &c)
			}
		}
	})
}

// BenchmarkResolventDerivation measures one deadend's learning step on the
// paper's Figure 1 scenario, under both agent-view representations.
func BenchmarkResolventDerivation(b *testing.B) {
	p := csp.NewProblemUniform(5, 3)
	for other := csp.Var(0); other < 4; other++ {
		if err := p.AddNotEqual(other, 4); err != nil {
			b.Fatal(err)
		}
	}
	in := []sim.Message{
		core.Ok{Sender: 0, Receiver: 4, Value: 0, Priority: 5},
		core.Ok{Sender: 1, Receiver: 4, Value: 1, Priority: 3},
		core.Ok{Sender: 2, Receiver: 4, Value: 2, Priority: 4},
		core.Ok{Sender: 3, Receiver: 4, Value: 0, Priority: 2},
	}
	for _, repr := range []struct {
		name string
		l    core.Learning
	}{
		{"ref", core.Learning{Kind: core.LearnResolvent, Reference: true}},
		{"dense", core.Learning{Kind: core.LearnResolvent}},
	} {
		b.Run(repr.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := core.NewAgent(4, p, 0, repr.l)
				a.Step(in)
			}
		})
	}
}

// BenchmarkTable1Representations runs the Table 1 learner grid (Rslv, Mcs,
// No on distributed 3-coloring) under both representations: the macro
// before/after pair of BENCH_2.json. Search trajectories are bit-identical
// (TestDenseMatchesReference), so the ns/op ratio is pure representation
// cost.
func BenchmarkTable1Representations(b *testing.B) {
	for _, repr := range []struct {
		name      string
		reference bool
	}{
		{"ref", true},
		{"dense", false},
	} {
		b.Run(repr.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, kind := range []core.LearningKind{core.LearnResolvent, core.LearnMCS, core.LearnNone} {
					l := core.Learning{Kind: kind, Reference: repr.reference}
					if _, err := experiments.RunCell(experiments.D3C, 40, experiments.AWC(l),
						experiments.Scale{Ns: []int{40}, Instances: 2, Inits: 2}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkGenerators measures instance construction for the three
// families at the paper's smallest sizes.
func BenchmarkGenerators(b *testing.B) {
	b.Run("Coloring-n60", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.Coloring(60, 162, 3, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ForcedSAT3-n50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.ForcedSAT3(50, 215, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("UniqueSAT3-n50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.UniqueSAT3(50, 170, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSubsumption compares the plain store against
// subsumption pruning (drop recorded supersets of a new nogood, reject
// subsumed inserts) — the store-level response to Section 4.2's
// redundant-nogood observation. Subset tests are charged as checks, so
// maxcck shows the net effect.
func BenchmarkAblationSubsumption(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		learning core.Learning
	}{
		{"Plain", core.Learning{Kind: core.LearnResolvent}},
		{"Pruning", core.Learning{Kind: core.LearnResolvent, SubsumptionPruning: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles, maxcck float64
			for i := 0; i < b.N; i++ {
				cell, err := experiments.RunCell(experiments.D3S1, 40, experiments.AWC(cfg.learning),
					experiments.Scale{Ns: []int{40}, Instances: 2, Inits: 2})
				if err != nil {
					b.Fatal(err)
				}
				cycles, maxcck = cell.Cycle, cell.MaxCCK
			}
			b.ReportMetric(cycles, "cycles")
			b.ReportMetric(maxcck, "maxcck")
		})
	}
}

// BenchmarkAblationTieBreak compares deterministic smallest-value
// tie-breaking against Yokoo's uniform-random tie-breaking in min-conflict
// value selection.
func BenchmarkAblationTieBreak(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		learning core.Learning
	}{
		{"First", core.Learning{Kind: core.LearnResolvent}},
		{"Random", core.Learning{Kind: core.LearnResolvent, TieBreak: core.TieBreakRandom, Seed: 99}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles, maxcck float64
			for i := 0; i < b.N; i++ {
				cell, err := experiments.RunCell(experiments.D3C, 40, experiments.AWC(cfg.learning),
					experiments.Scale{Ns: []int{40}, Instances: 2, Inits: 2})
				if err != nil {
					b.Fatal(err)
				}
				cycles, maxcck = cell.Cycle, cell.MaxCCK
			}
			b.ReportMetric(cycles, "cycles")
			b.ReportMetric(maxcck, "maxcck")
		})
	}
}

// BenchmarkBlockSweep measures the multi-variable extension across block
// sizes: fewer, bigger agents trade messages for local solving. Blocks of
// 4+ on dense coloring instances can thrash (the block solver's
// solution-enumeration cap interacts badly with tight local CSPs), so the
// benchmark stays at 1–3; dcspbench -blocks explores further.
func BenchmarkBlockSweep(b *testing.B) {
	scale := experiments.Scale{Instances: 2, Inits: 2, MaxCycles: 3000}
	var last *experiments.BlockSweepResult
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.BlockSweep(experiments.D3C, 24, []int{1, 2, 3}, scale)
		if err != nil {
			b.Fatal(err)
		}
		last = sweep
	}
	for _, p := range last.Points {
		b.ReportMetric(p.Cycle, fmt.Sprintf("cycles:block=%d", p.Block))
		b.ReportMetric(p.MaxCCK, fmt.Sprintf("maxcck:block=%d", p.Block))
	}
}

// BenchmarkHardnessSweep regenerates the density sweep behind the paper's
// m=2.7n choice for 3-coloring ("known to be hard").
func BenchmarkHardnessSweep(b *testing.B) {
	scale := experiments.Scale{Instances: 2, Inits: 2, MaxCycles: 5000}
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RatioSweep(experiments.D3C, 40,
			experiments.AWC(core.Learning{Kind: core.LearnResolvent}), nil, scale)
		if err != nil {
			b.Fatal(err)
		}
		last = sweep
	}
	for _, p := range last.Points {
		b.ReportMetric(p.Cycle, fmt.Sprintf("cycles:ratio=%.1f", p.Ratio))
	}
}
