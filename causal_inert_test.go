package discsp_test

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/discsp/discsp"
	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/telemetry"
)

// readCausal flushes a causal stream, decodes it, and builds its graph,
// failing on any well-formedness defect (duplicate or dangling trace IDs).
func readCausal(t *testing.T, ct *discsp.Telemetry, stream *bytes.Buffer) *causal.Graph {
	t.Helper()
	if err := ct.Flush(); err != nil {
		t.Fatalf("causal flush: %v", err)
	}
	events, err := telemetry.Read(stream)
	if err != nil {
		t.Fatalf("causal stream unreadable: %v", err)
	}
	if err := telemetry.CheckComplete(events); err != nil {
		t.Fatalf("causal stream incomplete: %v", err)
	}
	g, err := causal.BuildGraph(events)
	if err != nil {
		t.Fatalf("causal graph: %v", err)
	}
	if dang := g.Dangling(); len(dang) > 0 {
		t.Fatalf("%d dangling cause IDs (first %s)", len(dang), dang[0])
	}
	return g
}

// TestCausalInertSync pins the tentpole's non-negotiable: attaching the
// causal tracer to a synchronous run changes nothing — verdict, cycles,
// maxcck, totals, the assignment, and the exact v1 trace bytes are
// bit-identical with tracing on and off, across learners.
func TestCausalInertSync(t *testing.T) {
	p := hardColoring(t)
	learners := []struct {
		name string
		opts discsp.Options
	}{
		{"rslv", discsp.Options{Learning: discsp.LearnResolvent}},
		{"mcs", discsp.Options{Learning: discsp.LearnMCS}},
	}
	for _, lc := range learners {
		t.Run(lc.name, func(t *testing.T) {
			opts := lc.opts
			opts.InitialSeed = 11

			off, offTrace := runSyncWithTrace(t, p, opts)

			var stream bytes.Buffer
			opts.Causal = discsp.NewTelemetry(nil, &stream)
			on, onTrace := runSyncWithTrace(t, p, opts)

			if off.Solved != on.Solved || off.Insoluble != on.Insoluble {
				t.Errorf("verdict changed: off=%v/%v on=%v/%v", off.Solved, off.Insoluble, on.Solved, on.Insoluble)
			}
			if off.Cycles != on.Cycles || off.MaxCCK != on.MaxCCK {
				t.Errorf("cycles/maxcck changed: off=%d/%d on=%d/%d", off.Cycles, off.MaxCCK, on.Cycles, on.MaxCCK)
			}
			if off.TotalChecks != on.TotalChecks || off.Messages != on.Messages {
				t.Errorf("totals changed: off checks=%d msgs=%d, on checks=%d msgs=%d",
					off.TotalChecks, off.Messages, on.TotalChecks, on.Messages)
			}
			if !reflect.DeepEqual(off.Assignment, on.Assignment) {
				t.Errorf("assignment changed")
			}
			if !reflect.DeepEqual(off.MessagesByType, on.MessagesByType) {
				t.Errorf("message profile changed: off=%v on=%v", off.MessagesByType, on.MessagesByType)
			}
			if !bytes.Equal(offTrace, onTrace) {
				t.Errorf("trace bytes changed with causal tracing on (%d vs %d bytes)", len(offTrace), len(onTrace))
			}

			g := readCausal(t, opts.Causal, &stream)
			spans := 0
			for _, id := range g.Order {
				switch g.Nodes[id].Kind {
				case causal.SpanInit, causal.SpanStep:
					spans++
				}
			}
			if spans == 0 {
				t.Error("causal stream holds no activation spans")
			}
		})
	}
}

// TestCausalInertAsync: tracing must not perturb the asynchronous runtime's
// verdict, and the stream must be a well-formed single-run trace despite
// concurrent per-agent emission.
func TestCausalInertAsync(t *testing.T) {
	p := hardColoring(t)
	opts := discsp.Options{InitialSeed: 11}
	off, err := discsp.SolveAsync(p, opts)
	if err != nil {
		t.Fatalf("SolveAsync (causal off): %v", err)
	}

	var stream bytes.Buffer
	opts.Causal = discsp.NewTelemetry(nil, &stream)
	on, err := discsp.SolveAsync(p, opts)
	if err != nil {
		t.Fatalf("SolveAsync (causal on): %v", err)
	}
	if off.Solved != on.Solved {
		t.Errorf("verdict changed: off=%v on=%v", off.Solved, on.Solved)
	}
	if on.Solved && !p.IsSolution(on.Assignment) {
		t.Errorf("traced run produced an invalid solution")
	}
	g := readCausal(t, opts.Causal, &stream)
	if g.Runtime != "async" {
		t.Errorf("stream runtime = %q, want async", g.Runtime)
	}
}

// TestCausalInertTCP: same over the loopback TCP runtime, where trace IDs
// additionally ride the wire as negotiated envelope extensions.
func TestCausalInertTCP(t *testing.T) {
	p := chain(t, 8, 3)
	opts := discsp.Options{InitialSeed: 3}
	off, err := discsp.SolveTCP(p, opts)
	if err != nil {
		t.Fatalf("SolveTCP (causal off): %v", err)
	}

	var stream bytes.Buffer
	opts.Causal = discsp.NewTelemetry(nil, &stream)
	on, err := discsp.SolveTCP(p, opts)
	if err != nil {
		t.Fatalf("SolveTCP (causal on): %v", err)
	}
	if off.Solved != on.Solved {
		t.Errorf("verdict changed: off=%v on=%v", off.Solved, on.Solved)
	}
	g := readCausal(t, opts.Causal, &stream)
	if g.Runtime != "tcp" {
		t.Errorf("stream runtime = %q, want tcp", g.Runtime)
	}
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatalf("critical path: %v", err)
	}
	if cp.TransitKind != "wire" {
		t.Errorf("TransitKind = %q, want wire on the tcp runtime", cp.TransitKind)
	}
}

// TestCausalCriticalPathChain extracts the critical path from a traced
// solve of an implication chain and pins its structural invariants: the
// path is non-empty, every step after the first was released by a message,
// span finish times are monotone along the path, and the latency split is
// consistent with the path's wall-clock span.
func TestCausalCriticalPathChain(t *testing.T) {
	p := chain(t, 12, 3)
	var stream bytes.Buffer
	opts := discsp.Options{InitialSeed: 7, Causal: discsp.NewTelemetry(nil, &stream)}
	res, err := discsp.Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("chain not solved: %+v", res)
	}
	g := readCausal(t, opts.Causal, &stream)
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Steps) == 0 {
		t.Fatal("empty critical path")
	}
	if cp.Steps[0].Msg != nil {
		t.Error("first step has an inbound critical message")
	}
	prevEnd := int64(-1)
	for i, s := range cp.Steps {
		if i > 0 && s.Msg == nil {
			t.Errorf("step %d has no releasing message", i)
		}
		if s.ComputeUS < 0 || s.TransitUS < 0 {
			t.Errorf("step %d has negative latency: compute=%d transit=%d", i, s.ComputeUS, s.TransitUS)
		}
		if s.Span.EndUS < prevEnd {
			t.Errorf("step %d finishes at %dus, before its predecessor's %dus", i, s.Span.EndUS, prevEnd)
		}
		prevEnd = s.Span.EndUS
	}
	if cp.TransitKind != "queue" {
		t.Errorf("TransitKind = %q, want queue on the sync runtime", cp.TransitKind)
	}
	// The sync runtime activates agents sequentially, so the path's compute
	// and transit segments never overlap and must fit its wall-clock span.
	if cp.ComputeUS+cp.TransitUS > cp.TotalUS {
		t.Errorf("latency split %d+%dus exceeds the path's %dus span",
			cp.ComputeUS, cp.TransitUS, cp.TotalUS)
	}
	var perAgent int64
	for _, us := range cp.PerAgent {
		perAgent += us
	}
	if perAgent != cp.ComputeUS {
		t.Errorf("per-agent compute sums to %dus, path reports %dus", perAgent, cp.ComputeUS)
	}
}

// TestCausalProvenanceTermination runs four problem families under both
// learners and requires every derivation DAG to be closed: no dangling
// cause, and the walk from every learn event bottoms out on a terminal
// frontier that includes the initial constraints.
func TestCausalProvenanceTermination(t *testing.T) {
	coloring := func(t *testing.T) *discsp.Problem { return hardColoring(t) }
	forced := func(t *testing.T) *discsp.Problem {
		inst, err := discsp.GenerateForcedSAT3(10, 43, 9)
		if err != nil {
			t.Fatal(err)
		}
		return inst.Problem
	}
	unique := func(t *testing.T) *discsp.Problem {
		inst, err := discsp.GenerateUniqueSAT3(8, 35, 13)
		if err != nil {
			t.Fatal(err)
		}
		return inst.Problem
	}
	binary := func(t *testing.T) *discsp.Problem {
		inst, err := discsp.GenerateBinaryCSP(discsp.BinaryCSPConfig{
			Vars: 12, DomainSize: 3, Density: 0.4, Tightness: 0.3, Force: true,
		}, 17)
		if err != nil {
			t.Fatal(err)
		}
		return inst.Problem
	}
	families := []struct {
		name string
		make func(*testing.T) *discsp.Problem
	}{
		{"coloring", coloring},
		{"forcedSAT3", forced},
		{"uniqueSAT3", unique},
		{"binaryCSP", binary},
	}
	learners := []struct {
		name string
		kind discsp.LearningKind
	}{
		{"rslv", discsp.LearnResolvent},
		{"mcs", discsp.LearnMCS},
	}
	for _, fam := range families {
		for _, lc := range learners {
			t.Run(fam.name+"/"+lc.name, func(t *testing.T) {
				p := fam.make(t)
				var stream bytes.Buffer
				opts := discsp.Options{
					InitialSeed: 23,
					Learning:    lc.kind,
					Causal:      discsp.NewTelemetry(nil, &stream),
				}
				if _, err := discsp.Solve(p, opts); err != nil {
					t.Fatal(err)
				}
				g := readCausal(t, opts.Causal, &stream)

				learns := 0
				for _, id := range g.Order {
					if g.Nodes[id].Kind == causal.SpanLearn {
						learns++
					}
				}
				if learns == 0 {
					t.Skipf("instance solved without learning; nothing to walk")
				}
				prov, err := g.Provenance("all")
				if err != nil {
					t.Fatal(err)
				}
				if len(prov.Dangling) > 0 {
					t.Fatalf("provenance dangles: %v", prov.Dangling)
				}
				constraints := 0
				for _, term := range prov.Terminals() {
					switch term.Kind {
					case causal.SpanConstraint:
						constraints++
					case causal.SpanSeed, causal.SpanInit, causal.SpanStep:
						// Terminal frontier also admits seeds and the
						// cause-free activations that opened the run.
					default:
						t.Errorf("walk terminated at %s node %s: a %s must have causes",
							term.Kind, term.ID, term.Kind)
					}
				}
				if constraints == 0 {
					t.Error("no derivation bottomed out at an initial constraint")
				}
			})
		}
	}
}
