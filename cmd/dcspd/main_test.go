// Process-level smoke test for dcspd: builds the real binary, drives it
// over HTTP, SIGKILLs it mid-job, restarts it, and proves the journal
// replays the interrupted work. Gated behind SERVICE_SMOKE=1 (CI's
// service-smoke job and `make service-smoke`) because it builds a binary
// and owns real processes — too heavy for the default `go test ./...`.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const smokeTenantJobs = 8

func smokeEnabled(t *testing.T) {
	t.Helper()
	if os.Getenv("SERVICE_SMOKE") == "" {
		t.Skip("set SERVICE_SMOKE=1 to run the dcspd process smoke test")
	}
}

// buildDaemon compiles dcspd once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dcspd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

type daemonProc struct {
	cmd  *exec.Cmd
	url  string
	logs *bytes.Buffer
}

// startDaemon launches dcspd and waits for /healthz.
func startDaemon(t *testing.T, bin string, args ...string) *daemonProc {
	t.Helper()
	logs := &bytes.Buffer{}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("start dcspd: %v", err)
	}
	p := &daemonProc{cmd: cmd, logs: logs}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return p
}

func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("dcspd at %s never became healthy", url)
}

// problemJSON is a fixed tiny 3-coloring instance: a 4-cycle plus chords —
// solvable, and identical across restarts so verdicts must match.
const problemJSON = `{
  "domains": [[0,1,2],[0,1,2],[0,1,2],[0,1,2]],
  "nogoods": [
    [{"var":0,"val":0},{"var":1,"val":0}], [{"var":0,"val":1},{"var":1,"val":1}], [{"var":0,"val":2},{"var":1,"val":2}],
    [{"var":1,"val":0},{"var":2,"val":0}], [{"var":1,"val":1},{"var":2,"val":1}], [{"var":1,"val":2},{"var":2,"val":2}],
    [{"var":2,"val":0},{"var":3,"val":0}], [{"var":2,"val":1},{"var":3,"val":1}], [{"var":2,"val":2},{"var":3,"val":2}],
    [{"var":3,"val":0},{"var":0,"val":0}], [{"var":3,"val":1},{"var":0,"val":1}], [{"var":3,"val":2},{"var":0,"val":2}]
  ]
}`

type smokeStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Verdict string `json:"verdict"`
	Solved  bool   `json:"solved"`
}

func submit(t *testing.T, url string, body string) (smokeStatus, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st smokeStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode
}

func getStatus(t *testing.T, url, id string) smokeStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("get %s: %v", id, err)
	}
	defer resp.Body.Close()
	var st smokeStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return st
}

func waitVerdict(t *testing.T, url, id string, timeout time.Duration) smokeStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := getStatus(t, url, id)
		if st.State == "done" {
			return st
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return smokeStatus{}
}

func jobBody(extra string) string {
	if extra != "" {
		extra = "," + extra
	}
	return fmt.Sprintf(`{"problem": %s%s}`, problemJSON, extra)
}

func TestServiceSmoke(t *testing.T) {
	smokeEnabled(t)
	bin := buildDaemon(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.journal")
	addr := "127.0.0.1:7981"
	url := "http://" + addr

	args := []string{
		"-listen", addr,
		"-journal", journal,
		"-workers", "1",
		"-max-queue", "2",
		"-max-queue-tenant", "2",
		"-synthetic-delay",
	}
	p := startDaemon(t, bin, args...)
	waitHealthy(t, url)

	// --- Overload: one slow job occupies the only worker, the queue bound
	// is 2, so concurrent submissions past it must see a 429 shed.
	slow, code := submit(t, url, jobBody(`"synthetic_delay_ms": 3000, "deadline_ms": 60000`))
	if code != http.StatusAccepted {
		t.Fatalf("slow submit = %d", code)
	}
	var (
		mu       sync.Mutex
		accepted []string
		sheds    int
	)
	var wg sync.WaitGroup
	for i := 0; i < smokeTenantJobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, code := submit(t, url, jobBody(`"deadline_ms": 60000`))
			mu.Lock()
			defer mu.Unlock()
			switch code {
			case http.StatusAccepted:
				accepted = append(accepted, st.ID)
			case http.StatusTooManyRequests:
				sheds++
			default:
				t.Errorf("unexpected submit status %d", code)
			}
		}()
	}
	wg.Wait()
	if sheds == 0 {
		t.Fatalf("no submission was shed past the queue bound (accepted %d)", len(accepted))
	}
	if len(accepted) == 0 {
		t.Fatalf("every submission was shed; admission control is over-rejecting")
	}
	t.Logf("overload: %d accepted, %d shed with 429", len(accepted), sheds)

	// --- SIGKILL mid-job: the slow job is running (synthetic delay keeps it
	// observably in-flight). Kill -9, restart on the same journal, and the
	// accepted jobs must all reach verdicts — the slow one re-run, the done
	// ones replayed without execution.
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, url, slow.ID).State != "running" {
		if time.Now().After(deadline) {
			t.Fatalf("slow job never started running")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	p.cmd.Wait()

	p2 := startDaemon(t, bin, args...)
	waitHealthy(t, url)
	st := waitVerdict(t, url, slow.ID, 60*time.Second)
	if st.Verdict != "solved" || !st.Solved {
		t.Fatalf("killed-mid-run job after restart = %+v, want solved", st)
	}
	for _, id := range accepted {
		if st := waitVerdict(t, url, id, 60*time.Second); st.Verdict != "solved" {
			t.Fatalf("replayed job %s verdict = %q, want solved", id, st.Verdict)
		}
	}
	t.Logf("restart: %d journaled jobs reached verdicts", 1+len(accepted))

	// --- Graceful drain: SIGTERM with an in-flight job; the daemon must
	// finish it and exit 0.
	running, code := submit(t, url, jobBody(`"synthetic_delay_ms": 1500, "deadline_ms": 60000`))
	if code != http.StatusAccepted {
		t.Fatalf("drain-test submit = %d", code)
	}
	deadline = time.Now().Add(10 * time.Second)
	for getStatus(t, url, running.ID).State != "running" {
		if time.Now().After(deadline) {
			t.Fatalf("drain-test job never started")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("drain exit: %v\n%s", err, p2.logs.String())
	}
	if !p2.cmd.ProcessState.Success() {
		t.Fatalf("drain exit status = %v, want 0", p2.cmd.ProcessState)
	}

	// The drained job's verdict is durable: a third start serves it from
	// the journal.
	p3 := startDaemon(t, bin, args...)
	waitHealthy(t, url)
	if st := waitVerdict(t, url, running.ID, 30*time.Second); st.Verdict != "solved" {
		t.Fatalf("drained job verdict after restart = %q, want solved", st.Verdict)
	}
	if err := p3.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := p3.cmd.Wait(); err != nil {
		t.Fatalf("final drain exit: %v\n%s", err, p3.logs.String())
	}
}
