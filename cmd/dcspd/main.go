// Command dcspd is the solver daemon: a long-lived, multi-tenant HTTP
// service that accepts DisCSP jobs, runs them on a bounded worker pool, and
// survives crashes without losing accepted work.
//
// Usage:
//
//	dcspd -listen 127.0.0.1:7433 -journal /var/lib/dcspd/jobs.journal
//
//	# submit a job (native problem JSON)
//	curl -s -d @job.json http://127.0.0.1:7433/v1/jobs
//	# poll it
//	curl -s http://127.0.0.1:7433/v1/jobs/j00000001
//	# follow its progress events
//	curl -sN 'http://127.0.0.1:7433/v1/jobs/j00000001/events?follow=1'
//	# fetch a causally-traced job's span stream ("causal": true in the spec)
//	curl -s http://127.0.0.1:7433/v1/jobs/j00000001/trace > t.jsonl
//	dcsptrace -critical-path t.jsonl
//
// Robustness contract (see DESIGN.md §13):
//
//   - A 202 response means the job is fsync'd to the journal: a crash at
//     any later point replays it — completed jobs serve their recorded
//     results, interrupted jobs re-run.
//   - Overload is shed, never buffered: past the queue bounds the daemon
//     answers 429 + Retry-After immediately.
//   - SIGTERM/SIGINT drains: admission stops (503), the backlog and
//     in-flight jobs finish, the warm cache is saved, and the process
//     exits 0. A second signal abandons the backlog (still journaled).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/discsp/discsp"
	"github.com/discsp/discsp/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcspd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", "127.0.0.1:7433", "HTTP listen address")
		journal      = flag.String("journal", "", "append-only job log path; empty disables durability")
		workers      = flag.Int("workers", 0, "solver pool size; 0 = GOMAXPROCS")
		maxQueue     = flag.Int("max-queue", 64, "global queue bound (admission control)")
		tenantQueue  = flag.Int("max-queue-tenant", 0, "per-tenant queue bound; 0 = max-queue/4")
		tenantSlots  = flag.Int("max-running-tenant", 0, "per-tenant concurrency quota; 0 = workers/2")
		deadline     = flag.Duration("deadline", 30*time.Second, "default per-job deadline")
		maxDeadline  = flag.Duration("max-deadline", 5*time.Minute, "deadline ceiling (requests above are clamped)")
		maxCycles    = flag.Int("max-cycles", 100000, "cap on a job's synchronous cycle cutoff")
		maxVars      = flag.Int("max-vars", 4096, "largest instance this daemon accepts")
		retryMax     = flag.Int("retry-max", 2, "retries for transient (crashed-worker) failures")
		retention    = flag.String("retention", "all", "default nogood retention policy: all, lru:<cap>, or activity:<cap>")
		warmCache    = flag.String("warm-cache", "", "warm-start nogood cache path (persisted on drain); empty disables")
		warmStart    = flag.Bool("warm-start", false, "share an in-memory warm-start nogood cache across jobs")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "how long SIGTERM waits for the backlog before abandoning")
		synthetic    = flag.Bool("synthetic-delay", false, "accept synthetic_delay_ms in specs (load/crash testing)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v (configuration is all flags)", flag.Args())
	}
	ret, err := discsp.ParseRetention(*retention)
	if err != nil {
		return err
	}

	d, err := service.New(service.Config{
		Workers:             *workers,
		MaxQueue:            *maxQueue,
		MaxQueuePerTenant:   *tenantQueue,
		MaxRunningPerTenant: *tenantSlots,
		DefaultDeadline:     *deadline,
		MaxDeadline:         *maxDeadline,
		MaxCyclesCap:        *maxCycles,
		MaxVars:             *maxVars,
		RetryMax:            *retryMax,
		Retention:           ret,
		WarmStart:           *warmStart,
		WarmCachePath:       *warmCache,
		JournalPath:         *journal,
		AllowSyntheticDelay: *synthetic,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.Handler(d)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("dcspd: serving on http://%s (journal %q, %s)",
		ln.Addr(), *journal, describePool(*workers, *maxQueue))

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		d.Close()
		return err
	case s := <-sig:
		log.Printf("dcspd: %v: draining (in-flight and queued jobs will finish; signal again to abandon)", s)
	}

	// Graceful drain: stop admitting, finish the backlog, then stop serving.
	// A second signal or the drain timeout abandons the rest — journaled as
	// accepted, so a restart resumes them.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		select {
		case s := <-sig:
			log.Printf("dcspd: %v again: abandoning the backlog (it stays journaled)", s)
			cancel()
		case <-drainCtx.Done():
		}
	}()
	drainErr := d.Drain(drainCtx)
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dcspd: http shutdown: %v", err)
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("dcspd: drained clean, exiting")
	return nil
}

func describePool(workers, maxQueue int) string {
	if workers == 0 {
		return fmt.Sprintf("worker pool GOMAXPROCS, queue bound %d", maxQueue)
	}
	return fmt.Sprintf("worker pool %d, queue bound %d", workers, maxQueue)
}
