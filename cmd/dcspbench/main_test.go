package main

import (
	"testing"

	"github.com/discsp/discsp/internal/experiments"
)

func TestParseNs(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"60", []int{60}, false},
		{"60,90, 120", []int{60, 90, 120}, false},
		{"", nil, true},
		{"60,x", nil, true},
		{"-5", nil, true},
		{"0", nil, true},
	}
	for _, tt := range tests {
		got, err := parseNs(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseNs(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseNs(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseNs(%q) = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}

func TestParseKind(t *testing.T) {
	tests := []struct {
		in      string
		want    experiments.ProblemKind
		wantErr bool
	}{
		{"d3c", experiments.D3C, false},
		{"d3s", experiments.D3S, false},
		{"d3s1", experiments.D3S1, false},
		{"nope", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := parseKind(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseKind(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseKind(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
