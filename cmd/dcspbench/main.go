// Command dcspbench regenerates the tables and the figure of the paper's
// evaluation section.
//
// Usage:
//
//	dcspbench -table 1            # one table at paper scale
//	dcspbench -all                # every table and the figure
//	dcspbench -figure             # Figure 2 (d3s1, n=50)
//	dcspbench -table 8 -quick     # reduced trials for a fast look
//	dcspbench -table 1 -instances 5 -inits 2 -ns 60,90
//	dcspbench -all -workers 8     # fan trials across 8 goroutines
//	dcspbench -all -journal run.jsonl           # crash-safe: journal trials
//	dcspbench -all -journal run.jsonl -resume   # continue an interrupted run
//	dcspbench -runtimes d3c -faults chaos       # fault-injected comparison
//
// Paper scale runs 100 trials per cell with the cutoff at 10000 cycles and
// can take a while for the no-learning rows; -quick or the explicit knobs
// trade trials for speed. Trials are independently seeded and fanned
// across -workers goroutines (default: all CPUs); every -workers value
// produces bit-identical tables, so parallel paper-scale regeneration is
// still deterministic. A progress line (trials done/total, trials/sec)
// goes to stderr every ~2s; -progress=false silences it.
//
// Long runs survive interruption with -journal FILE: every completed trial
// is appended (fsync'd) to the JSONL journal, and rerunning the same
// command with -resume skips the recorded trials and reproduces the
// aggregate tables bit-identically. The journal pins -seed and -maxcycles;
// resuming under different values is refused.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/discsp/discsp/internal/experiments"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcspbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table     = flag.Int("table", 0, "table number to regenerate (1-10)")
		figure    = flag.Bool("figure", false, "regenerate Figure 2")
		all       = flag.Bool("all", false, "regenerate every table and the figure")
		quick     = flag.Bool("quick", false, "reduced trial counts (3 instances x 2 inits)")
		instances = flag.Int("instances", 0, "override instances per cell")
		inits     = flag.Int("inits", 0, "override initial-value sets per instance")
		maxCycles = flag.Int("maxcycles", 0, "override the 10000-cycle cutoff")
		seed      = flag.Int64("seed", 0, "seed base for an independent replication")
		nsFlag    = flag.String("ns", "", "comma-separated problem sizes overriding the paper's")
		figKind   = flag.String("figkind", "d3s1", "figure family: d3c, d3s, or d3s1")
		figN      = flag.Int("fign", 50, "figure problem size")
		workers   = flag.Int("workers", 0, "concurrent trial workers; 0 = all CPUs, 1 = serial (identical results either way)")
		progress  = flag.Bool("progress", true, "print a periodic trials-done progress line to stderr")
		format    = flag.String("format", "text", "output format: text or markdown")
		sweep     = flag.String("sweep", "", "run a hardness sweep over constraint densities for this family (d3c, d3s, d3s1)")
		sweepN    = flag.Int("sweepn", 50, "sweep problem size")
		blocks    = flag.String("blocks", "", "run a block-size sweep of the multi-variable extension for this family")
		runtimes  = flag.String("runtimes", "", "compare sync/async/tcp runtimes on one instance of this family")
		retention = flag.String("retention", "all", "nogood retention policy for every agent store: all, lru:CAP, or activity:CAP")
		warmstart = flag.String("warmstart", "", "run the warm-start repeat-solve workload for these families (comma-separated d3c,d3s,d3s1, or all)")
		warmOut   = flag.String("warmout", "", "write the warm-start measurements as JSON to this file (with -warmstart)")
		journal   = flag.String("journal", "", "append-only trial journal (JSONL) for crash-safe runs; completed trials are recorded as they finish")
		resume    = flag.Bool("resume", false, "resume from an existing -journal, skipping already-recorded trials (aggregates stay bit-identical)")
		faultsArg = flag.String("faults", "", "fault profile for -runtimes (async/tcp legs): "+faults.ProfileSyntax)
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule in -faults")
		shards    = flag.Int("shards", 0, "shard the -runtimes tcp leg's hub across N relay listeners; 0 = one")
		wireCodec = flag.String("wire-codec", "binary", "-runtimes tcp leg wire codec: binary or json")
		causalOn  = flag.Bool("causal", false, "causally trace the -runtimes tcp leg (spans, message trace IDs, nogood lineage); needs -trace-out")
		causalOut = flag.String("trace-out", "", "write the -causal trace stream to this file (read it with dcsptrace)")

		telemetryOut = flag.String("telemetry", "", "write the schema-2 telemetry JSONL stream (per-trial events + metrics snapshots) to this file")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/vars, and /debug/pprof on this address while the run is live")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeMemProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, "dcspbench: heap profile:", err)
			}
		}()
	}

	scale := experiments.PaperScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *instances > 0 {
		scale.Instances = *instances
	}
	if *inits > 0 {
		scale.Inits = *inits
	}
	scale.MaxCycles = *maxCycles
	scale.SeedBase = *seed
	scale.Workers = *workers
	if *progress {
		scale.Progress = experiments.ProgressPrinter(os.Stderr, 2*time.Second)
	}
	if *nsFlag != "" {
		ns, err := parseNs(*nsFlag)
		if err != nil {
			return err
		}
		scale.Ns = ns
	}
	ret, err := nogood.ParseRetention(*retention)
	if err != nil {
		return err
	}
	scale.Retention = ret

	markdown := false
	switch *format {
	case "text":
	case "markdown":
		markdown = true
	default:
		return fmt.Errorf("unknown format %q (want text or markdown)", *format)
	}

	fcfg, err := faults.ParseProfile(*faultsArg, *faultSeed)
	if err != nil {
		return err
	}
	if *warmOut != "" && *warmstart == "" {
		return fmt.Errorf("-warmout needs -warmstart")
	}
	if (*causalOn || *causalOut != "") && *runtimes == "" {
		return fmt.Errorf("-causal/-trace-out trace the -runtimes tcp leg; pass -runtimes FAMILY")
	}

	// Telemetry: the grids emit one trial event per completed trial (in
	// deterministic aggregation order) plus a metrics snapshot per grid;
	// attaching it never changes trial results or table aggregates.
	if *telemetryOut != "" || *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		var stream io.Writer
		if *telemetryOut != "" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				return err
			}
			defer f.Close()
			stream = f
		}
		tel := telemetry.NewRun(reg, stream)
		tel.Emit(telemetry.Event{Kind: telemetry.KindMeta, Runtime: "bench"})
		if *metricsAddr != "" {
			srv, err := telemetry.Serve(*metricsAddr, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "dcspbench: serving metrics at http://%s/metrics\n", srv.Addr)
		}
		defer func() {
			if err := tel.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "dcspbench: telemetry stream:", err)
			}
		}()
		scale.Telemetry = tel
	}

	if *resume && *journal == "" {
		return fmt.Errorf("-resume needs -journal")
	}
	if *journal != "" {
		j, err := experiments.OpenJournal(*journal, scale.JournalMeta(), *resume)
		if err != nil {
			return err
		}
		defer j.Close()
		if n := j.Recovered(); n > 0 {
			fmt.Fprintf(os.Stderr, "dcspbench: resuming from %s, skipping %d journaled trials\n", *journal, n)
		}
		scale.Journal = j
	}

	switch {
	case *warmstart != "":
		return printWarmStart(*warmstart, scale, *warmOut)
	case *runtimes != "":
		codec, err := wire.ParseCodec(*wireCodec)
		if err != nil {
			return err
		}
		tcp := experiments.TCPOptions{Shards: *shards, Codec: codec}
		if *causalOn != (*causalOut != "") {
			return fmt.Errorf("-causal and -trace-out go together")
		}
		if *causalOn {
			f, err := os.Create(*causalOut)
			if err != nil {
				return err
			}
			defer f.Close()
			ct := telemetry.NewRun(nil, f)
			defer func() {
				if err := ct.Flush(); err != nil {
					fmt.Fprintln(os.Stderr, "dcspbench: causal trace stream:", err)
				}
			}()
			tcp.Causal = ct
		}
		return printRuntimes(*runtimes, *sweepN, scale, fcfg, tcp, markdown)
	case *blocks != "":
		return printBlockSweep(*blocks, *sweepN, scale)
	case *sweep != "":
		return printSweep(*sweep, *sweepN, scale)
	case *all:
		for num := 1; num <= 10; num++ {
			if err := printTable(num, scale, markdown); err != nil {
				return err
			}
		}
		return printFigure(*figKind, *figN, scale, markdown)
	case *figure:
		return printFigure(*figKind, *figN, scale, markdown)
	case *table >= 1:
		return printTable(*table, scale, markdown)
	default:
		flag.Usage()
		return fmt.Errorf("pass -table N, -figure, -all, or -sweep FAMILY")
	}
}

func printTable(num int, scale experiments.Scale, markdown bool) error {
	t, err := experiments.Tables(num, scale)
	if err != nil {
		return err
	}
	if markdown {
		err = t.Markdown(os.Stdout)
	} else {
		err = t.Fprint(os.Stdout)
	}
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(os.Stdout)
	return err
}

func printFigure(kindName string, n int, scale experiments.Scale, markdown bool) error {
	kind, err := parseKind(kindName)
	if err != nil {
		return err
	}
	fig, err := experiments.Figure2(kind, n, nil, scale)
	if err != nil {
		return err
	}
	if markdown {
		return fig.Markdown(os.Stdout)
	}
	return fig.Fprint(os.Stdout)
}

func printSweep(kindName string, n int, scale experiments.Scale) error {
	kind, err := parseKind(kindName)
	if err != nil {
		return err
	}
	alg := experiments.AWC(experiments.BestLearning(kind))
	sweep, err := experiments.RatioSweep(kind, n, alg, nil, scale)
	if err != nil {
		return err
	}
	if err := sweep.Fprint(os.Stdout); err != nil {
		return err
	}
	hardest := sweep.HardestPoint()
	_, err = fmt.Printf("hardest density: m/n = %.2f (%.1f mean cycles)\n", hardest.Ratio, hardest.Cycle)
	return err
}

func printRuntimes(kindName string, n int, scale experiments.Scale, fcfg *faults.Config, tcp experiments.TCPOptions, markdown bool) error {
	kind, err := parseKind(kindName)
	if err != nil {
		return err
	}
	problem, err := experiments.MakeInstance(kind, n, 1+scale.SeedBase)
	if err != nil {
		return err
	}
	initial := gen.RandomInitial(problem, 2+scale.SeedBase)
	results, err := experiments.CompareRuntimesWith(problem, initial, experiments.BestLearning(kind), 0, fcfg, tcp)
	if err != nil {
		return err
	}
	fmt.Printf("Runtime comparison: %s n=%d, AWC+%s\n", kind, n, experiments.BestLearning(kind).Name())
	if markdown {
		return experiments.MarkdownRuntimes(os.Stdout, results)
	}
	return experiments.FprintRuntimes(os.Stdout, results)
}

// warmRow is one family × n line of the warm-start JSON report.
type warmRow struct {
	Kind           string  `json:"kind"`
	N              int     `json:"n"`
	Pairs          int     `json:"pairs"`
	ColdCycles     float64 `json:"cold_cycles"`
	WarmCycles     float64 `json:"warm_cycles"`
	CycleReduction float64 `json:"cycle_reduction"`
	ColdChecks     float64 `json:"cold_checks"`
	WarmChecks     float64 `json:"warm_checks"`
	CheckReduction float64 `json:"check_reduction"`
	ColdSolvedPct  float64 `json:"cold_solved_pct"`
	WarmSolvedPct  float64 `json:"warm_solved_pct"`
	CacheNogoods   int     `json:"cache_nogoods"`
	SeededPairs    int     `json:"seeded_pairs"`
}

type warmReport struct {
	Note      string    `json:"note"`
	Retention string    `json:"retention"`
	SeedBase  int64     `json:"seed_base"`
	Rows      []warmRow `json:"rows"`
}

// printWarmStart runs the repeat-solve workload for every requested family
// at its paper sizes (or -ns), prints a table, and optionally writes the
// JSON report consumed by BENCH_6.json.
func printWarmStart(families string, scale experiments.Scale, outPath string) error {
	var kinds []experiments.ProblemKind
	if families == "all" {
		kinds = []experiments.ProblemKind{experiments.D3C, experiments.D3S, experiments.D3S1}
	} else {
		for _, name := range strings.Split(families, ",") {
			kind, err := parseKind(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			kinds = append(kinds, kind)
		}
	}
	report := warmReport{
		Note:      "warm-start repeat-solve workload: same instance and initial assignment, cold (empty store) vs warm (store seeded from a cache harvested off one prior solve of the instance)",
		Retention: scale.Retention.String(),
		SeedBase:  scale.SeedBase,
	}
	fmt.Printf("Warm-start repeat-solve (retention=%s)\n", scale.Retention)
	fmt.Println("family  n    pairs  cold-cyc  warm-cyc  cyc-red  cold-cck   warm-cck   cck-red  seeded")
	for _, kind := range kinds {
		ns := scale.Ns
		if len(ns) == 0 {
			ns = kind.PaperNs()
		}
		for _, n := range ns {
			r, err := experiments.WarmStart(kind, n, scale)
			if err != nil {
				return err
			}
			fmt.Printf("%-6s  %-3d  %-5d  %-8.1f  %-8.1f  %6.1f%%  %-9.1f  %-9.1f  %6.1f%%  %d/%d\n",
				r.Kind, r.N, r.Pairs, r.ColdCycles, r.WarmCycles, 100*r.CycleReduction(),
				r.ColdChecks, r.WarmChecks, 100*r.CheckReduction(), r.SeededPairs, r.Pairs)
			report.Rows = append(report.Rows, warmRow{
				Kind:           r.Kind.String(),
				N:              r.N,
				Pairs:          r.Pairs,
				ColdCycles:     r.ColdCycles,
				WarmCycles:     r.WarmCycles,
				CycleReduction: r.CycleReduction(),
				ColdChecks:     r.ColdChecks,
				WarmChecks:     r.WarmChecks,
				CheckReduction: r.CheckReduction(),
				ColdSolvedPct:  r.ColdSolved,
				WarmSolvedPct:  r.WarmSolved,
				CacheNogoods:   r.CacheNogoods,
				SeededPairs:    r.SeededPairs,
			})
		}
	}
	if outPath == "" {
		return nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printBlockSweep(kindName string, n int, scale experiments.Scale) error {
	kind, err := parseKind(kindName)
	if err != nil {
		return err
	}
	sweep, err := experiments.BlockSweep(kind, n, nil, scale)
	if err != nil {
		return err
	}
	return sweep.Fprint(os.Stdout)
}

// writeMemProfile snapshots the heap (after a GC, so the profile reflects
// live objects) into path.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func parseKind(s string) (experiments.ProblemKind, error) {
	switch s {
	case "d3c":
		return experiments.D3C, nil
	case "d3s":
		return experiments.D3S, nil
	case "d3s1":
		return experiments.D3S1, nil
	default:
		return 0, fmt.Errorf("unknown family %q (want d3c, d3s, or d3s1)", s)
	}
}

func parseNs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ns := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q in -ns", p)
		}
		ns = append(ns, n)
	}
	return ns, nil
}
