// Command dcsptrace summarizes the JSONL streams the solvers write: the
// legacy v1 cycle trace (dcspsolve -trace) and the schema-2 telemetry
// stream (dcspsolve/dcspbench -telemetry). The format is detected from the
// stream's first event; feeding the wrong reader yields a versioned error
// naming the producing flag instead of a raw JSON field error.
//
// Usage:
//
//	dcspsolve -algo awc -trace run.jsonl problem.cnf
//	dcsptrace run.jsonl
//	dcsptrace -cycles run.jsonl      # include the per-cycle table
//
//	dcspsolve -async -telemetry t.jsonl problem.cnf
//	dcsptrace t.jsonl                # verdict, store growth, agent table
//	dcsptrace -agents t.jsonl        # per-agent progress timelines
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcsptrace:", err)
		os.Exit(1)
	}
}

func run() error {
	cycles := flag.Bool("cycles", false, "print the per-cycle table")
	agents := flag.Bool("agents", false, "print per-agent progress timelines (telemetry streams)")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("expected exactly one trace file, got %d", flag.NArg())
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	events, err := telemetry.Read(f)
	switch {
	case err == nil:
		return printTelemetry(events, *cycles, *agents)
	case errors.Is(err, telemetry.ErrLegacyTrace):
		if _, err := f.Seek(0, 0); err != nil {
			return err
		}
		return printTrace(f, *cycles)
	default:
		return err
	}
}

// printTrace summarizes a v1 cycle trace.
func printTrace(f *os.File, cycles bool) error {
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	s := trace.Summarize(events)
	fmt.Printf("algorithm:      %s\n", s.Algorithm)
	fmt.Printf("outcome:        solved=%v insoluble=%v in %d cycles\n", s.Solved, s.Insoluble, s.Cycles)
	fmt.Printf("maxcck:         %d\n", s.MaxCCK)
	fmt.Printf("messages:       %d total, peak %d at cycle %d\n", s.TotalMessages, s.PeakMessages, s.PeakMessagesCycle)
	fmt.Printf("busiest cycle:  %d (%d checks)\n", s.BusiestCycle, s.BusiestCycleChecks)

	if !cycles {
		return nil
	}
	fmt.Printf("\n%6s  %8s  %8s  %10s\n", "cycle", "msgsIn", "msgsOut", "maxChecks")
	for _, ev := range events {
		if ev.Kind != trace.KindCycle {
			continue
		}
		fmt.Printf("%6d  %8d  %8d  %10d\n", ev.Cycle, ev.MessagesIn, ev.MessagesOut, ev.MaxChecks)
	}
	return nil
}

// printTelemetry summarizes a schema-2 telemetry stream.
func printTelemetry(events []telemetry.Event, cycles, agents bool) error {
	s := telemetry.Summarize(events)
	if err := s.Fprint(os.Stdout); err != nil {
		return err
	}
	if cycles {
		fmt.Printf("\n%6s  %8s  %8s  %10s  %10s\n", "cycle", "msgsIn", "msgsOut", "maxChecks", "storeTotal")
		for _, ev := range events {
			if ev.Kind != telemetry.KindCycle {
				continue
			}
			fmt.Printf("%6d  %8d  %8d  %10d  %10d\n", ev.Cycle, ev.MessagesIn, ev.MessagesOut, ev.MaxChecks, ev.StoreTotal)
		}
	}
	if agents {
		printAgentTimelines(events)
	}
	return nil
}

// printAgentTimelines renders each agent's processed-message count across
// the stream's watchdog samples: one row per sample, one column per agent —
// the async/tcp analogue of the per-cycle table.
func printAgentTimelines(events []telemetry.Event) {
	agents := 0
	for _, ev := range events {
		if ev.Kind == telemetry.KindSample && len(ev.Processed) > agents {
			agents = len(ev.Processed)
		}
	}
	if agents == 0 {
		fmt.Println("\nno progress samples in stream (run too short for the watchdog cadence, or a sync run)")
		return
	}
	fmt.Printf("\n%10s  %9s  %8s", "elapsed", "delivered", "inFlight")
	for a := 0; a < agents; a++ {
		fmt.Printf("  a%-5d", a)
	}
	fmt.Println()
	for _, ev := range events {
		if ev.Kind != telemetry.KindSample {
			continue
		}
		fmt.Printf("%8dus  %9d  %8d", ev.ElapsedUS, ev.Delivered, ev.InFlight)
		for a := 0; a < agents; a++ {
			var p int64
			if a < len(ev.Processed) {
				p = ev.Processed[a]
			}
			fmt.Printf("  %-6d", p)
		}
		fmt.Println()
	}
}
