// Command dcsptrace summarizes a JSONL cycle trace produced by
// dcspsolve -trace: run outcome, busiest cycle, message peaks, and an
// optional per-cycle table.
//
// Usage:
//
//	dcspsolve -algo awc -trace run.jsonl problem.cnf
//	dcsptrace run.jsonl
//	dcsptrace -cycles run.jsonl      # include the per-cycle table
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/discsp/discsp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcsptrace:", err)
		os.Exit(1)
	}
}

func run() error {
	cycles := flag.Bool("cycles", false, "print the per-cycle table")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("expected exactly one trace file, got %d", flag.NArg())
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	s := trace.Summarize(events)
	fmt.Printf("algorithm:      %s\n", s.Algorithm)
	fmt.Printf("outcome:        solved=%v insoluble=%v in %d cycles\n", s.Solved, s.Insoluble, s.Cycles)
	fmt.Printf("maxcck:         %d\n", s.MaxCCK)
	fmt.Printf("messages:       %d total, peak %d at cycle %d\n", s.TotalMessages, s.PeakMessages, s.PeakMessagesCycle)
	fmt.Printf("busiest cycle:  %d (%d checks)\n", s.BusiestCycle, s.BusiestCycleChecks)

	if !*cycles {
		return nil
	}
	fmt.Printf("\n%6s  %8s  %8s  %10s\n", "cycle", "msgsIn", "msgsOut", "maxChecks")
	for _, ev := range events {
		if ev.Kind != trace.KindCycle {
			continue
		}
		fmt.Printf("%6d  %8d  %8d  %10d\n", ev.Cycle, ev.MessagesIn, ev.MessagesOut, ev.MaxChecks)
	}
	return nil
}
