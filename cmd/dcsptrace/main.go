// Command dcsptrace summarizes the JSONL streams the solvers write: the
// legacy v1 cycle trace (dcspsolve -trace), the schema-2/3 telemetry
// stream (dcspsolve/dcspbench -telemetry), and the causal trace stream
// (dcspsolve -causal). The format is detected from the stream's first
// event; feeding the wrong reader yields a versioned error naming the
// producing flag instead of a raw JSON field error, and a stream whose
// tail was torn (the writer died mid-run) is refused with a truncation
// error instead of rendering a silently partial table.
//
// Usage:
//
//	dcspsolve -algo awc -trace run.jsonl problem.cnf
//	dcsptrace run.jsonl
//	dcsptrace -cycles run.jsonl      # include the per-cycle table
//
//	dcspsolve -async -telemetry t.jsonl problem.cnf
//	dcsptrace t.jsonl                # verdict, store growth, agent table
//	dcsptrace -agents t.jsonl        # per-agent progress timelines
//
//	dcspsolve -causal -trace-out c.jsonl problem.cnf
//	dcsptrace -critical-path c.jsonl    # longest causal chain to verdict
//	dcsptrace -provenance all c.jsonl   # nogood derivation DAG + use counts
//	dcsptrace -perfetto out.json c.jsonl  # open out.json at ui.perfetto.dev
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcsptrace:", err)
		os.Exit(1)
	}
}

func run() error {
	cycles := flag.Bool("cycles", false, "print the per-cycle table")
	agents := flag.Bool("agents", false, "print per-agent progress timelines (telemetry streams)")
	critical := flag.Bool("critical-path", false, "print the causal critical path: the longest chain of activations and message hops ending at the verdict (needs a -causal stream)")
	provenance := flag.String("provenance", "", `print the nogood derivation DAG for a trace ID, a canonical nogood key, or "all" learn events (needs a -causal stream)`)
	perfetto := flag.String("perfetto", "", `write a Chrome trace-event (Perfetto) JSON export to this file, "-" for stdout; open it at ui.perfetto.dev (needs a -causal stream)`)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("expected exactly one trace file, got %d", flag.NArg())
	}
	return analyze(flag.Arg(0), analysis{
		cycles:     *cycles,
		agents:     *agents,
		critical:   *critical,
		provenance: *provenance,
		perfetto:   *perfetto,
	})
}

// analysis is the flag set in struct form, so tests can drive analyze
// without a flag.CommandLine round trip.
type analysis struct {
	cycles, agents, critical bool
	provenance, perfetto     string
}

// analyze dispatches one trace file to the reader its format calls for and
// runs the requested analyses. Errors wrap the package-level sentinel of
// whichever reader refused the stream, so callers (and exit codes) can
// distinguish a torn tail from a wrong format.
func analyze(path string, a analysis) error {
	wantCausal := a.critical || a.provenance != "" || a.perfetto != ""
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	events, err := telemetry.Read(f)
	switch {
	case err == nil:
		if err := telemetry.CheckComplete(events); err != nil {
			return err
		}
		if wantCausal {
			return runCausal(events, a.critical, a.provenance, a.perfetto)
		}
		return printTelemetry(events, a.cycles, a.agents)
	case errors.Is(err, telemetry.ErrLegacyTrace):
		if wantCausal {
			return fmt.Errorf("causal analyses need a -causal telemetry stream, not a v1 cycle trace: %w", err)
		}
		if _, err := f.Seek(0, 0); err != nil {
			return err
		}
		return printTrace(f, a.cycles)
	default:
		return err
	}
}

// printTrace summarizes a v1 cycle trace.
func printTrace(f *os.File, cycles bool) error {
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	if err := trace.CheckComplete(events); err != nil {
		return err
	}
	s := trace.Summarize(events)
	fmt.Printf("algorithm:      %s\n", s.Algorithm)
	fmt.Printf("outcome:        solved=%v insoluble=%v in %d cycles\n", s.Solved, s.Insoluble, s.Cycles)
	fmt.Printf("maxcck:         %d\n", s.MaxCCK)
	fmt.Printf("messages:       %d total, peak %d at cycle %d\n", s.TotalMessages, s.PeakMessages, s.PeakMessagesCycle)
	fmt.Printf("busiest cycle:  %d (%d checks)\n", s.BusiestCycle, s.BusiestCycleChecks)

	if !cycles {
		return nil
	}
	fmt.Printf("\n%6s  %8s  %8s  %10s\n", "cycle", "msgsIn", "msgsOut", "maxChecks")
	for _, ev := range events {
		if ev.Kind != trace.KindCycle {
			continue
		}
		fmt.Printf("%6d  %8d  %8d  %10d\n", ev.Cycle, ev.MessagesIn, ev.MessagesOut, ev.MaxChecks)
	}
	return nil
}

// printTelemetry summarizes a schema-2 telemetry stream.
func printTelemetry(events []telemetry.Event, cycles, agents bool) error {
	s := telemetry.Summarize(events)
	if err := s.Fprint(os.Stdout); err != nil {
		return err
	}
	if cycles {
		fmt.Printf("\n%6s  %8s  %8s  %10s  %10s\n", "cycle", "msgsIn", "msgsOut", "maxChecks", "storeTotal")
		for _, ev := range events {
			if ev.Kind != telemetry.KindCycle {
				continue
			}
			fmt.Printf("%6d  %8d  %8d  %10d  %10d\n", ev.Cycle, ev.MessagesIn, ev.MessagesOut, ev.MaxChecks, ev.StoreTotal)
		}
	}
	if agents {
		printAgentTimelines(events)
	}
	return nil
}

// runCausal runs the requested causal analyses on one graph build. A
// dangling cause warns rather than fails: a per-worker stream from an
// external-worker run legitimately references message IDs whose emitting
// spans live in a sibling worker's stream.
func runCausal(events []telemetry.Event, critical bool, provTarget, perfettoOut string) error {
	g, err := causal.BuildGraph(events)
	if err != nil {
		return err
	}
	if dang := g.Dangling(); len(dang) > 0 {
		fmt.Fprintf(os.Stderr, "dcsptrace: %d dangling cause IDs (first: %s) — partial stream from a multi-worker run?\n",
			len(dang), dang[0])
	}
	if critical {
		cp, err := g.CriticalPath()
		if err != nil {
			return err
		}
		printCriticalPath(cp)
	}
	if provTarget != "" {
		p, err := g.Provenance(provTarget)
		if err != nil {
			return err
		}
		printProvenance(p)
	}
	if perfettoOut != "" {
		w := os.Stdout
		if perfettoOut != "-" {
			f, err := os.Create(perfettoOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := causal.WritePerfetto(w, events); err != nil {
			return err
		}
		if perfettoOut != "-" {
			fmt.Printf("perfetto export: %s (open at ui.perfetto.dev)\n", perfettoOut)
		}
	}
	return nil
}

// printCriticalPath renders the critical path: one row per activation on
// the chain, with each step's compute time and the transit latency of the
// message edge that released it.
func printCriticalPath(cp *causal.CriticalPath) {
	fmt.Printf("critical path: %d steps spanning %dus (compute %dus, %s %dus)\n",
		len(cp.Steps), cp.TotalUS, cp.ComputeUS, cp.TransitKind, cp.TransitUS)
	fmt.Printf("\n%4s  %6s  %-12s  %-5s  %10s  %10s  %s\n",
		"step", "agent", "span", "kind", "computeUs", "transitUs", "via")
	for i, s := range cp.Steps {
		via := ""
		if s.Msg != nil {
			via = fmt.Sprintf("%s %s", s.Msg.Type, s.Msg.ID)
		}
		fmt.Printf("%4d  %6d  %-12s  %-5s  %10d  %10d  %s\n",
			i, s.Span.Agent, s.Span.ID, s.Span.Kind, s.ComputeUS, s.TransitUS, via)
	}
	ids := make([]int, 0, len(cp.PerAgent))
	for a := range cp.PerAgent {
		ids = append(ids, a)
	}
	sort.Ints(ids)
	fmt.Printf("\nper-agent compute on the path:\n")
	for _, a := range ids {
		fmt.Printf("  agent %-4d %dus\n", a, cp.PerAgent[a])
	}
}

// printProvenance renders the derivation DAG: the queried roots, the
// terminal frontier they bottom out on, and per-nogood use counts.
func printProvenance(p *causal.Provenance) {
	terms := p.Terminals()
	fmt.Printf("provenance: %d roots, %d reachable nodes, %d terminals\n",
		len(p.Roots), len(p.Reach), len(terms))
	if len(p.Dangling) > 0 {
		fmt.Printf("dangling causes (partial stream?): %v\n", p.Dangling)
	}
	fmt.Printf("\nroots:\n")
	for _, r := range p.Roots {
		key := r.NogoodKey
		if r.Kind == causal.SpanLearn && key == "" {
			key = "⊥ (insoluble)"
		}
		fmt.Printf("  %-12s agent=%-4d %-6s uses=%-4d %s\n",
			r.ID, r.Agent, r.Kind, p.UseCounts[r.ID], key)
	}
	fmt.Printf("\nterminals:\n")
	for _, t := range terms {
		fmt.Printf("  %-12s %-10s uses=%-4d %s\n", t.ID, t.Kind, p.UseCounts[t.ID], t.NogoodKey)
	}
}

// printAgentTimelines renders each agent's processed-message count across
// the stream's watchdog samples: one row per sample, one column per agent —
// the async/tcp analogue of the per-cycle table.
func printAgentTimelines(events []telemetry.Event) {
	agents := 0
	for _, ev := range events {
		if ev.Kind == telemetry.KindSample && len(ev.Processed) > agents {
			agents = len(ev.Processed)
		}
	}
	if agents == 0 {
		fmt.Println("\nno progress samples in stream (run too short for the watchdog cadence, or a sync run)")
		return
	}
	fmt.Printf("\n%10s  %9s  %8s", "elapsed", "delivered", "inFlight")
	for a := 0; a < agents; a++ {
		fmt.Printf("  a%-5d", a)
	}
	fmt.Println()
	for _, ev := range events {
		if ev.Kind != telemetry.KindSample {
			continue
		}
		fmt.Printf("%8dus  %9d  %8d", ev.ElapsedUS, ev.Delivered, ev.InFlight)
		for a := 0; a < agents; a++ {
			var p int64
			if a < len(ev.Processed) {
				p = ev.Processed[a]
			}
			fmt.Printf("  %-6d", p)
		}
		fmt.Println()
	}
}
