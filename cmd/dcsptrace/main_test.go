package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/discsp/discsp"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/trace"
)

// writeFixture drops content into a temp file and returns its path.
func writeFixture(t *testing.T, name string, content []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// tornTail drops the stream's closing events — the shape a writer that
// died mid-run (or a torn filesystem tail) leaves behind. The JSONL stays
// well-formed; only the terminator lines are gone (a telemetry stream
// closes with an end event plus a metrics snapshot, so both are torn).
func tornTail(t *testing.T, stream []byte) []byte {
	t.Helper()
	out := stream
	for {
		trimmed := bytes.TrimSuffix(out, []byte("\n"))
		i := bytes.LastIndexByte(trimmed, '\n')
		if i < 0 {
			t.Fatal("tore the fixture down to a single line")
		}
		last := trimmed[i:]
		out = trimmed[:i+1]
		if bytes.Contains(last, []byte(`"kind":"end"`)) ||
			bytes.Contains(last, []byte(`"kind":"snapshot"`)) {
			continue
		}
		return out
	}
}

// solveStreams produces matched v1-trace and telemetry streams from one
// real solve, so the fixtures are byte-genuine writer output.
func solveStreams(t *testing.T) (v1, tel []byte) {
	t.Helper()
	col, err := discsp.GenerateColoring(8, 12, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf, telBuf bytes.Buffer
	rec := trace.NewRecorder(&traceBuf)
	rec.Start(trace.Meta{
		Algorithm: "AWC-rslv",
		Vars:      col.Problem.NumVars(),
		Nogoods:   col.Problem.NumNogoods(),
	})
	opts := discsp.Options{
		InitialSeed: 3,
		Trace:       rec.Hook(),
		Telemetry:   discsp.NewTelemetry(nil, &telBuf),
	}
	res, err := discsp.Solve(col.Problem, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec.End(sim.Result{
		Solved:      res.Solved,
		Insoluble:   res.Insoluble,
		Cycles:      res.Cycles,
		MaxCCK:      res.MaxCCK,
		TotalChecks: res.TotalChecks,
		Messages:    int(res.Messages),
	})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := opts.Telemetry.Flush(); err != nil {
		t.Fatal(err)
	}
	return traceBuf.Bytes(), telBuf.Bytes()
}

func TestAnalyzeAcceptsCompleteStreams(t *testing.T) {
	v1, tel := solveStreams(t)
	if err := analyze(writeFixture(t, "v1.jsonl", v1), analysis{}); err != nil {
		t.Errorf("complete v1 trace refused: %v", err)
	}
	if err := analyze(writeFixture(t, "tel.jsonl", tel), analysis{}); err != nil {
		t.Errorf("complete telemetry stream refused: %v", err)
	}
}

// TestAnalyzeRefusesTornTails is the satellite's contract: a stream whose
// tail was torn exits with the reader's versioned truncation error instead
// of rendering a silently partial table.
func TestAnalyzeRefusesTornTails(t *testing.T) {
	v1, tel := solveStreams(t)
	err := analyze(writeFixture(t, "v1-torn.jsonl", tornTail(t, v1)), analysis{})
	if !errors.Is(err, trace.ErrTruncatedTrace) {
		t.Errorf("torn v1 trace: want ErrTruncatedTrace, got %v", err)
	}
	err = analyze(writeFixture(t, "tel-torn.jsonl", tornTail(t, tel)), analysis{})
	if !errors.Is(err, telemetry.ErrTruncatedStream) {
		t.Errorf("torn telemetry stream: want ErrTruncatedStream, got %v", err)
	}
}

// TestAnalyzeCausalOnLegacyTrace: asking a v1 cycle trace for causal
// analyses names the producing flag via the versioned legacy-trace error.
func TestAnalyzeCausalOnLegacyTrace(t *testing.T) {
	v1, _ := solveStreams(t)
	err := analyze(writeFixture(t, "v1.jsonl", v1), analysis{critical: true})
	if !errors.Is(err, telemetry.ErrLegacyTrace) {
		t.Errorf("want ErrLegacyTrace, got %v", err)
	}
}
