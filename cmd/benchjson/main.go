// Command benchjson converts `go test -bench` output into a before/after
// JSON report. Benchmarks that expose a <Name>/ref and <Name>/dense pair
// (the map-backed reference representation against the dense default) are
// emitted as one entry with both sides and the derived ratios; unpaired
// benchmarks are ignored.
//
// Usage:
//
//	go test -run='^$' -bench='...' -benchmem . | benchjson -o BENCH_2.json
//	go test -run='^$' -bench='...' -benchmem . | benchjson -o new.json -baseline BENCH_2.json
//
// The report is what `make bench-json` commits as BENCH_2.json and what the
// CI benchmark-comparison step uploads as an artifact. The search
// trajectories behind each pair are bit-identical by construction (see
// internal/experiments' cross-representation equivalence tests), so the
// ratios measure representation cost only.
//
// With -baseline the command becomes the CI regression gate: after writing
// the fresh report it compares every baseline pair against the fresh run
// and exits non-zero on a regression. Raw ns/op is machine-dependent, so
// the wall-clock gate compares *speedups* (before/after measured on the
// same machine in the same run — the machine cancels out): a pair fails if
// its fresh speedup falls more than -tolerance below the committed one.
// Allocations are deterministic for a pinned toolchain, so the probe-view
// check loop (the solver's hot path) additionally fails on ANY allocs/op
// increase, including losing its alloc-free status.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Side is one benchmark variant's measurements.
type Side struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Pair is one before/after comparison.
type Pair struct {
	// Name is the benchmark name without the Benchmark prefix and the
	// /ref//dense suffix.
	Name string `json:"name"`
	// Before is the reference (map-backed) representation.
	Before Side `json:"before"`
	// After is the dense representation.
	After Side `json:"after"`
	// Speedup is Before.NsPerOp / After.NsPerOp.
	Speedup float64 `json:"speedup"`
	// AllocReduction is Before.AllocsPerOp / After.AllocsPerOp, omitted
	// when the after side is allocation-free (JSON has no +Inf; see
	// AfterAllocFree).
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
	// AfterAllocFree marks pairs whose dense side performs zero
	// allocations per op (the reduction ratio would be infinite).
	AfterAllocFree bool `json:"after_alloc_free,omitempty"`
}

// Report is the BENCH_2.json document.
type Report struct {
	// Unit reminds readers what one op is for each benchmark: see the
	// benchmark's doc comment in bench_test.go.
	Note  string `json:"note"`
	Pairs []Pair `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

// variants collects the two sides of one benchmark while parsing.
type variants struct {
	ref, dense *Side
}

func parseSide(ns string, rest string) Side {
	s := Side{}
	s.NsPerOp, _ = strconv.ParseFloat(ns, 64)
	fields := strings.Fields(rest)
	for i := 1; i < len(fields); i++ {
		val, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		switch fields[i] {
		case "B/op":
			s.BytesPerOp = val
		case "allocs/op":
			s.AllocsPerOp = val
		}
	}
	return s
}

func main() {
	out := flag.String("o", "BENCH_2.json", "output file")
	baseline := flag.String("baseline", "", "gate mode: compare the fresh report against this committed baseline and exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.15, "relative speedup drop tolerated by -baseline before failing")
	allocGate := flag.String("alloc-gate", "ProbeViewCheckLoop", "pair name whose dense side fails the gate on any allocs/op increase")
	flag.Parse()

	found := make(map[string]*variants)
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		full, ns, rest := m[1], m[2], m[3]
		var which string
		var base string
		switch {
		case strings.HasSuffix(full, "/ref"):
			which, base = "ref", strings.TrimSuffix(full, "/ref")
		case strings.HasSuffix(full, "/dense"):
			which, base = "dense", strings.TrimSuffix(full, "/dense")
		default:
			continue
		}
		base = strings.TrimPrefix(base, "Benchmark")
		side := parseSide(ns, rest)
		v := found[base]
		if v == nil {
			v = &variants{}
			found[base] = v
			order = append(order, base)
		}
		if which == "ref" {
			v.ref = &side
		} else {
			v.dense = &side
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	report := Report{
		Note: "before = map-backed reference representation (core.Learning.Reference), " +
			"after = dense slice-backed default; identical search trajectories and charged " +
			"nogood checks (see TestDenseMatchesReference), so ratios are pure representation cost",
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i] < order[j] })
	for _, base := range order {
		v := found[base]
		if v.ref == nil || v.dense == nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: missing %s side, skipping\n", base, missing(v))
			continue
		}
		p := Pair{Name: base, Before: *v.ref, After: *v.dense}
		if p.After.NsPerOp > 0 {
			p.Speedup = round2(p.Before.NsPerOp / p.After.NsPerOp)
		}
		if p.After.AllocsPerOp > 0 {
			p.AllocReduction = round2(p.Before.AllocsPerOp / p.After.AllocsPerOp)
		} else if p.Before.AllocsPerOp > 0 {
			p.AfterAllocFree = true
		}
		report.Pairs = append(report.Pairs, p)
	}
	if len(report.Pairs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no ref/dense pairs found in input")
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: close:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d pairs to %s\n", len(report.Pairs), *out)

	if *baseline != "" {
		if failures := gate(report, *baseline, *tolerance, *allocGate); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchjson: GATE FAIL:", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate passed against %s\n", *baseline)
	}
}

// gate compares the fresh report against the committed baseline and returns
// one message per regression. Rules:
//
//   - every baseline pair must still exist (a deleted benchmark silently
//     unguards its hot path);
//   - the fresh speedup must not fall more than tolerance below the
//     baseline's — speedup is before/after on one machine in one run, so
//     this wall-clock gate transfers across runner hardware;
//   - the allocGate pair's dense side must not allocate more per op than
//     the baseline records, and must stay alloc-free if the baseline says
//     so (allocation counts are exact for a pinned toolchain).
func gate(fresh Report, baselinePath string, tolerance float64, allocGate string) []string {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return []string{fmt.Sprintf("read baseline: %v", err)}
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return []string{fmt.Sprintf("parse baseline %s: %v", baselinePath, err)}
	}
	byName := make(map[string]Pair, len(fresh.Pairs))
	for _, p := range fresh.Pairs {
		byName[p.Name] = p
	}
	var failures []string
	for _, want := range base.Pairs {
		got, ok := byName[want.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", want.Name))
			continue
		}
		if floor := want.Speedup * (1 - tolerance); got.Speedup < floor {
			failures = append(failures, fmt.Sprintf(
				"%s: speedup %.2fx fell below %.2fx (baseline %.2fx - %.0f%% tolerance)",
				want.Name, got.Speedup, floor, want.Speedup, tolerance*100))
		}
		if want.Name == allocGate {
			if want.AfterAllocFree && !got.AfterAllocFree && got.After.AllocsPerOp > 0 {
				failures = append(failures, fmt.Sprintf(
					"%s: dense side allocates %.0f allocs/op; baseline is alloc-free",
					want.Name, got.After.AllocsPerOp))
			} else if got.After.AllocsPerOp > want.After.AllocsPerOp {
				failures = append(failures, fmt.Sprintf(
					"%s: dense side allocs/op rose %.0f -> %.0f",
					want.Name, want.After.AllocsPerOp, got.After.AllocsPerOp))
			}
		}
	}
	return failures
}

func missing(v *variants) string {
	if v.ref == nil {
		return "ref"
	}
	return "dense"
}

func round2(x float64) float64 {
	return float64(int(x*100+0.5)) / 100
}
