// Command benchjson converts `go test -bench` output into a before/after
// JSON report. By default, benchmarks that expose a <Name>/ref and
// <Name>/dense pair (the map-backed reference representation against the
// dense default) are emitted as one entry with both sides and the derived
// ratios; unpaired benchmarks are ignored. Repeatable -pair flags replace
// the default pairing with arbitrary sub-benchmark suffixes, which is how
// the wire-codec report (BENCH_7.json) compares JSON against binary and
// plain against batched framing from one benchmark's variants.
//
// Usage:
//
//	go test -run='^$' -bench='...' -benchmem . | benchjson -o BENCH_2.json
//	go test -run='^$' -bench='...' -benchmem . | benchjson -o new.json -baseline BENCH_2.json
//	go test -run='^$' -bench=Wire -benchmem ./internal/wire/ | benchjson \
//	    -o BENCH_7.json -pair binary_batch=json_plain:binary_batch -min-speedup 2
//
// The report is what `make bench-json` commits as BENCH_2.json (and `make
// bench-wire` as BENCH_7.json) and what the CI benchmark-comparison step
// uploads as an artifact. For the ref/dense pairs the search trajectories
// are bit-identical by construction (see internal/experiments'
// cross-representation equivalence tests), so the ratios measure
// representation cost only.
//
// With -baseline the command becomes the CI regression gate: after writing
// the fresh report it compares every baseline pair against the fresh run
// and exits non-zero on a regression. Raw ns/op is machine-dependent, so
// the wall-clock gate compares *speedups* (before/after measured on the
// same machine in the same run — the machine cancels out): a pair fails if
// its fresh speedup falls more than -tolerance below the committed one.
// Allocations are deterministic for a pinned toolchain, so the probe-view
// check loop (the solver's hot path) additionally fails on ANY allocs/op
// increase, including losing its alloc-free status.
//
// Two gates need no baseline, because they assert machine-independent
// invariants of the fresh run itself: -min-speedup fails pairs whose
// within-run speedup falls below an absolute floor (a bare number floors
// every pair; NAME=FLOOR entries floor only the named pairs), and
// -alloc-free fails any named pair whose after side allocates at all.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Side is one benchmark variant's measurements.
type Side struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Pair is one before/after comparison.
type Pair struct {
	// Name is the benchmark name without the Benchmark prefix and the
	// /ref//dense suffix.
	Name string `json:"name"`
	// Before is the reference (map-backed) representation.
	Before Side `json:"before"`
	// After is the dense representation.
	After Side `json:"after"`
	// Speedup is Before.NsPerOp / After.NsPerOp.
	Speedup float64 `json:"speedup"`
	// AllocReduction is Before.AllocsPerOp / After.AllocsPerOp, omitted
	// when the after side is allocation-free (JSON has no +Inf; see
	// AfterAllocFree).
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
	// AfterAllocFree marks pairs whose dense side performs zero
	// allocations per op (the reduction ratio would be infinite).
	AfterAllocFree bool `json:"after_alloc_free,omitempty"`
}

// Report is the BENCH_2.json document.
type Report struct {
	// Unit reminds readers what one op is for each benchmark: see the
	// benchmark's doc comment in bench_test.go.
	Note  string `json:"note"`
	Pairs []Pair `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

// pairSpec names one before/after pairing of sub-benchmark suffixes. The
// default (ref/dense) spec has an empty name, keeping the legacy report's
// pair names; explicit -pair specs emit "<Base>/<name>".
type pairSpec struct {
	name, before, after string
}

// pairFlags accumulates repeated -pair NAME=BEFORE:AFTER flags.
type pairFlags []pairSpec

func (p *pairFlags) String() string {
	var parts []string
	for _, s := range *p {
		parts = append(parts, fmt.Sprintf("%s=%s:%s", s.name, s.before, s.after))
	}
	return strings.Join(parts, ",")
}

func (p *pairFlags) Set(v string) error {
	name, suffixes, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=BEFORE:AFTER, got %q", v)
	}
	before, after, ok := strings.Cut(suffixes, ":")
	if !ok || name == "" || before == "" || after == "" {
		return fmt.Errorf("want NAME=BEFORE:AFTER, got %q", v)
	}
	*p = append(*p, pairSpec{name: name, before: "/" + before, after: "/" + after})
	return nil
}

func parseSide(ns string, rest string) Side {
	s := Side{}
	s.NsPerOp, _ = strconv.ParseFloat(ns, 64)
	fields := strings.Fields(rest)
	for i := 1; i < len(fields); i++ {
		val, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		switch fields[i] {
		case "B/op":
			s.BytesPerOp = val
		case "allocs/op":
			s.AllocsPerOp = val
		}
	}
	return s
}

func main() {
	out := flag.String("o", "BENCH_2.json", "output file")
	baseline := flag.String("baseline", "", "gate mode: compare the fresh report against this committed baseline and exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.15, "relative speedup drop tolerated by -baseline before failing")
	allocGate := flag.String("alloc-gate", "ProbeViewCheckLoop", "pair name whose after side fails the -baseline gate on any allocs/op increase")
	note := flag.String("note", "", "report note overriding the default ref/dense explanation")
	minSpeedup := flag.String("min-speedup", "", "baseline-free gate: a bare floor applied to every pair, or comma-separated NAME=FLOOR entries applied to the named pairs")
	allocFree := flag.String("alloc-free", "", "baseline-free gate: comma-separated pair names whose after side must be allocation-free")
	var pairs pairFlags
	flag.Var(&pairs, "pair", "pair sub-benchmark suffixes as NAME=BEFORE:AFTER (repeatable); replaces the default ref:dense pairing")
	flag.Parse()
	if len(pairs) == 0 {
		pairs = pairFlags{{name: "", before: "/ref", after: "/dense"}}
	}

	sides := make(map[string]Side)
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		full := strings.TrimPrefix(m[1], "Benchmark")
		if _, dup := sides[full]; !dup {
			order = append(order, full)
		}
		sides[full] = parseSide(m[2], m[3])
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	report := Report{Note: *note}
	if report.Note == "" {
		report.Note = "before = map-backed reference representation (core.Learning.Reference), " +
			"after = dense slice-backed default; identical search trajectories and charged " +
			"nogood checks (see TestDenseMatchesReference), so ratios are pure representation cost"
	}
	// Pairs are matched against the benchmarks' appearance order, then
	// sorted by name, so the report is stable for any -bench interleaving.
	for _, spec := range pairs {
		for _, full := range order {
			if !strings.HasSuffix(full, spec.before) {
				continue
			}
			base := strings.TrimSuffix(full, spec.before)
			after, ok := sides[base+spec.after]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: %s: missing %s side, skipping\n", base, spec.after)
				continue
			}
			name := base
			if spec.name != "" {
				name = base + "/" + spec.name
			}
			p := Pair{Name: name, Before: sides[full], After: after}
			if p.After.NsPerOp > 0 {
				p.Speedup = round2(p.Before.NsPerOp / p.After.NsPerOp)
			}
			if p.After.AllocsPerOp > 0 {
				p.AllocReduction = round2(p.Before.AllocsPerOp / p.After.AllocsPerOp)
			} else if p.Before.AllocsPerOp > 0 {
				p.AfterAllocFree = true
			}
			report.Pairs = append(report.Pairs, p)
		}
	}
	sort.SliceStable(report.Pairs, func(i, j int) bool { return report.Pairs[i].Name < report.Pairs[j].Name })
	if len(report.Pairs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no before/after pairs found in input")
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: close:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d pairs to %s\n", len(report.Pairs), *out)

	var failures []string
	failures = append(failures, freshGate(report, *minSpeedup, *allocFree)...)
	if *baseline != "" {
		failures = append(failures, gate(report, *baseline, *tolerance, *allocGate)...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchjson: GATE FAIL:", f)
		}
		os.Exit(1)
	}
	if *minSpeedup != "" || *allocFree != "" || *baseline != "" {
		fmt.Fprintln(os.Stderr, "benchjson: gate passed")
	}
}

// freshGate applies the baseline-free invariants to the fresh report:
// absolute within-run speedup floors (global or per-pair) and zero
// allocs/op on the after side of the named pairs. Both are
// machine-independent — speedup is a same-run ratio and allocation counts
// are exact for a pinned toolchain — so they hold on any runner without a
// committed reference.
func freshGate(fresh Report, minSpeedup, allocFree string) []string {
	byName := make(map[string]Pair, len(fresh.Pairs))
	for _, p := range fresh.Pairs {
		byName[p.Name] = p
	}
	var failures []string
	check := func(p Pair, floor float64) {
		if p.Speedup < floor {
			failures = append(failures, fmt.Sprintf(
				"%s: speedup %.2fx below the %.2fx floor", p.Name, p.Speedup, floor))
		}
	}
	if minSpeedup != "" {
		if floor, err := strconv.ParseFloat(minSpeedup, 64); err == nil {
			for _, p := range fresh.Pairs {
				check(p, floor)
			}
		} else {
			for _, entry := range strings.Split(minSpeedup, ",") {
				name, val, ok := strings.Cut(entry, "=")
				floor, err := strconv.ParseFloat(val, 64)
				if !ok || err != nil {
					failures = append(failures, fmt.Sprintf(
						"bad -min-speedup entry %q (want a floor or NAME=FLOOR)", entry))
					continue
				}
				p, found := byName[name]
				if !found {
					failures = append(failures, fmt.Sprintf(
						"%s: named in -min-speedup but not in this run", name))
					continue
				}
				check(p, floor)
			}
		}
	}
	if allocFree != "" {
		for _, name := range strings.Split(allocFree, ",") {
			p, ok := byName[name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: named in -alloc-free but not in this run", name))
				continue
			}
			if p.After.AllocsPerOp > 0 {
				failures = append(failures, fmt.Sprintf(
					"%s: after side allocates %.0f allocs/op; must be allocation-free",
					name, p.After.AllocsPerOp))
			}
		}
	}
	return failures
}

// gate compares the fresh report against the committed baseline and returns
// one message per regression. Rules:
//
//   - every baseline pair must still exist (a deleted benchmark silently
//     unguards its hot path);
//   - the fresh speedup must not fall more than tolerance below the
//     baseline's — speedup is before/after on one machine in one run, so
//     this wall-clock gate transfers across runner hardware;
//   - the allocGate pair's dense side must not allocate more per op than
//     the baseline records, and must stay alloc-free if the baseline says
//     so (allocation counts are exact for a pinned toolchain).
func gate(fresh Report, baselinePath string, tolerance float64, allocGate string) []string {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return []string{fmt.Sprintf("read baseline: %v", err)}
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return []string{fmt.Sprintf("parse baseline %s: %v", baselinePath, err)}
	}
	byName := make(map[string]Pair, len(fresh.Pairs))
	for _, p := range fresh.Pairs {
		byName[p.Name] = p
	}
	var failures []string
	for _, want := range base.Pairs {
		got, ok := byName[want.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", want.Name))
			continue
		}
		if floor := want.Speedup * (1 - tolerance); got.Speedup < floor {
			failures = append(failures, fmt.Sprintf(
				"%s: speedup %.2fx fell below %.2fx (baseline %.2fx - %.0f%% tolerance)",
				want.Name, got.Speedup, floor, want.Speedup, tolerance*100))
		}
		if want.Name == allocGate {
			if want.AfterAllocFree && !got.AfterAllocFree && got.After.AllocsPerOp > 0 {
				failures = append(failures, fmt.Sprintf(
					"%s: dense side allocates %.0f allocs/op; baseline is alloc-free",
					want.Name, got.After.AllocsPerOp))
			} else if got.After.AllocsPerOp > want.After.AllocsPerOp {
				failures = append(failures, fmt.Sprintf(
					"%s: dense side allocs/op rose %.0f -> %.0f",
					want.Name, want.After.AllocsPerOp, got.After.AllocsPerOp))
			}
		}
	}
	return failures
}

func round2(x float64) float64 {
	return float64(int(x*100+0.5)) / 100
}
