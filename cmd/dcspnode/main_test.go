// Process-level chaos harness: build the real dcspsolve and dcspnode
// binaries, split an instance across two worker processes, SIGKILL one
// mid-solve, relaunch it, and require the verdict and assignment to match a
// clean run of the same seed. This is the strongest form of the
// reconnection claim — nothing survives the kill except the hub's parked
// frames and the cold-reset protocol.
//
// The harness spawns processes and runs for seconds, so it is gated behind
// CHAOS_PROC=1 (wired to `make chaos-proc` and the CI chaos job).
package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// chainCNF writes an n-variable implication chain with a unique solution:
// x1 ∧ (¬x1∨x2) ∧ … ∧ (¬x(n-1)∨xn) forces every variable true. Uniqueness
// is what lets the harness compare assignments across runs — any solved
// verdict must carry the all-ones assignment.
func chainCNF(t *testing.T, dir string, n int) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n1 0\n", n, n)
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "-%d %d 0\n", i, i+1)
	}
	path := filepath.Join(dir, "chain.cnf")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// reservePorts grabs n distinct loopback ports by binding and releasing
// them; the hub rebinds them moments later. The workers' dial retry rides
// out the gap (and any unlucky theft shows up as a clear connect error).
func reservePorts(t *testing.T, n int) []int {
	t.Helper()
	lns := make([]net.Listener, n)
	ports := make([]int, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

var assignRe = regexp.MustCompile(`(?m)^x(\d+) = (\d+)$`)

// parseAssignment extracts the -v assignment lines from hub output.
func parseAssignment(out string) map[int]int {
	a := make(map[int]int)
	for _, m := range assignRe.FindAllStringSubmatch(out, -1) {
		v, _ := strconv.Atoi(m[1])
		val, _ := strconv.Atoi(m[2])
		a[v] = val
	}
	return a
}

// chaosRun executes one multi-process solve of the chain instance: two
// dcspnode workers (launched before the hub listens, exercising the dial
// retry), one dcspsolve hub with a seeded delay+drop schedule to stretch
// the run, and — when kill is set — a SIGKILL of the odd-variables worker
// mid-solve followed by a cold relaunch. It returns the hub's stdout.
func chaosRun(t *testing.T, solveBin, nodeBin, cnf string, nVars int, kill bool) string {
	t.Helper()
	ports := reservePorts(t, 2)
	listen := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d", ports[0], ports[1])
	oddVars := fmt.Sprintf("1-%d:2", nVars-1)
	workerCmd := func(vars string) *exec.Cmd {
		cmd := exec.Command(nodeBin,
			"-connect", listen, "-vars", vars,
			"-connect-timeout", "30s", "-seed", "2",
			cnf)
		cmd.Stderr = os.Stderr
		return cmd
	}

	// Workers first: until the hub binds the reserved ports every dial is
	// refused, which is exactly the startup race the retry loop absorbs.
	wEven := workerCmd(fmt.Sprintf("0-%d:2", nVars-2))
	wOdd := workerCmd(oddVars)
	for _, w := range []*exec.Cmd{wEven, wOdd} {
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
	}

	hub := exec.Command(solveBin,
		"-tcp", "-tcp-external", "-shards", "2", "-tcp-listen", listen,
		"-faults", "delay=900ms,drop=0.25", "-fault-seed", "3",
		"-reconnect-grace", "20s", "-timeout", "120s",
		"-seed", "2", "-v",
		cnf)
	var hubOut bytes.Buffer
	hub.Stdout = &hubOut
	hub.Stderr = os.Stderr
	if err := hub.Start(); err != nil {
		t.Fatal(err)
	}

	var wOdd2 *exec.Cmd
	if kill {
		// Mid-solve (the delay/drop schedule stretches the run well past
		// this): kill the odd worker dead — no signal handler, no flush —
		// then relaunch it cold.
		time.Sleep(1200 * time.Millisecond)
		if err := wOdd.Process.Kill(); err != nil {
			t.Fatalf("SIGKILL worker: %v", err)
		}
		wOdd.Wait()
		time.Sleep(200 * time.Millisecond)
		wOdd2 = workerCmd(oddVars)
		if err := wOdd2.Start(); err != nil {
			t.Fatal(err)
		}
	}

	if err := hub.Wait(); err != nil {
		t.Fatalf("hub: %v\n%s", err, hubOut.String())
	}
	if err := wEven.Wait(); err != nil {
		t.Fatalf("even worker: %v", err)
	}
	if kill {
		if err := wOdd2.Wait(); err != nil {
			t.Fatalf("relaunched worker: %v", err)
		}
	} else {
		if err := wOdd.Wait(); err != nil {
			t.Fatalf("odd worker: %v", err)
		}
	}
	return hubOut.String()
}

// TestChaosProcKillWorker is the acceptance harness for the survivable
// multi-process runtime: a worker SIGKILLed and relaunched mid-solve must
// leave the verdict and assignment identical to a clean run of the same
// seed, with the hub's reconnect counter proving the kill landed mid-run.
func TestChaosProcKillWorker(t *testing.T) {
	if os.Getenv("CHAOS_PROC") == "" {
		t.Skip("set CHAOS_PROC=1 to run the process-level chaos harness")
	}
	dir := t.TempDir()
	solveBin := filepath.Join(dir, "dcspsolve")
	nodeBin := filepath.Join(dir, "dcspnode")
	for bin, pkg := range map[string]string{solveBin: "../dcspsolve", nodeBin: "."} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	const nVars = 64
	cnf := chainCNF(t, dir, nVars)

	clean := chaosRun(t, solveBin, nodeBin, cnf, nVars, false)
	if !strings.Contains(clean, "solved=true") {
		t.Fatalf("clean run not solved:\n%s", clean)
	}
	chaos := chaosRun(t, solveBin, nodeBin, cnf, nVars, true)
	if !strings.Contains(chaos, "solved=true") {
		t.Fatalf("chaos run not solved:\n%s", chaos)
	}

	// The reconnect counter in the verdict suffix proves the kill landed
	// mid-run (a kill after the run ended would make this a clean rerun,
	// not a chaos test).
	recon := regexp.MustCompile(`reconnects=(\d+)`).FindStringSubmatch(chaos)
	if recon == nil || recon[1] == "0" {
		t.Fatalf("chaos run reports no reconnects; the kill missed the run:\n%s", chaos)
	}

	cleanA, chaosA := parseAssignment(clean), parseAssignment(chaos)
	if len(cleanA) != nVars || len(chaosA) != nVars {
		t.Fatalf("assignments incomplete: clean %d vars, chaos %d vars (want %d)",
			len(cleanA), len(chaosA), nVars)
	}
	for v := 0; v < nVars; v++ {
		if cleanA[v] != chaosA[v] {
			t.Errorf("assignment diverged at x%d: clean %d, chaos %d", v, cleanA[v], chaosA[v])
		}
		// The chain has exactly one model — all true — so "same assignment"
		// is also checkable in absolute terms.
		if chaosA[v] != 1 {
			t.Errorf("x%d = %d in the unique all-ones model", v, chaosA[v])
		}
	}
}
