// Command dcspnode runs agent nodes for a subset of one instance's
// variables against an external dcspsolve hub — the multi-process form of
// the TCP runtime. The hub is started with -tcp -tcp-external (and usually
// -tcp-listen so the relay addresses are known up front); each dcspnode
// process owns a slice of the variables and dials the relay its variables
// are sharded to.
//
// Usage:
//
//	# hub: 2 relays on fixed ports, no in-process nodes
//	dcspsolve -tcp -tcp-external -shards 2 \
//	    -tcp-listen 127.0.0.1:7401,127.0.0.1:7402 graph.col
//
//	# workers: split the variables by shard parity
//	dcspnode -connect 127.0.0.1:7401,127.0.0.1:7402 -vars 0-49:2   graph.col
//	dcspnode -connect 127.0.0.1:7401,127.0.0.1:7402 -vars 1-49:2   graph.col
//
// Every process must load the same instance with the same algorithm
// configuration and initial-value seed; the hub validates the solution, so
// a mismatch shows up as a run that cannot terminate, not a wrong answer.
// -vars takes comma-separated values, ranges, and strided ranges
// (lo-hi[:step]). A worker exits when the hub reports the run over.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/discsp/discsp"
	"github.com/discsp/discsp/internal/csp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcspnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		connect   = flag.String("connect", "", "comma-separated hub relay addresses in shard order (required)")
		varsArg   = flag.String("vars", "", "variables this worker owns: comma-separated values, ranges, and strided ranges lo-hi[:step] (required)")
		algo      = flag.String("algo", "awc", "algorithm: awc, db, or abt (must match the hub's)")
		learn     = flag.String("learn", "rslv", "AWC learning: rslv, mcs, or none")
		k         = flag.Int("k", 0, "size bound for kthRslv learning; 0 = unrestricted")
		colors    = flag.Int("colors", 3, "colors for .col inputs")
		seed      = flag.Int64("seed", 1, "seed for random initial values (must match the hub's)")
		retention = flag.String("retention", "all", "nogood-store retention policy: all, lru:<cap>, or activity:<cap>")
		wireCodec = flag.String("wire-codec", "binary", "wire codec to request: binary or json")
		noBatch   = flag.Bool("wire-nobatch", false, "disable frame batching on this worker's connections")
		wireCRC   = flag.Bool("wire-crc", false, "request the CRC32C frame trailer on binary connections (effective only when the hub armed -wire-crc too)")
		drainWin  = flag.Duration("drain-window", 0, "how long a node with a failed write drains inbound frames for the hub's stop before reporting a hub death; 0 = 1s default (raise on slow links)")
		connTO    = flag.Duration("connect-timeout", 0, "how long each node keeps retrying its dial — at startup before the hub listens, and when redialing after a severed connection; 0 = 15s default")
		heartbeat = flag.Duration("heartbeat", 0, "idle-link liveness beacon period, matching the hub's; 0 = 500ms default, negative disables")
		deadPeer  = flag.Duration("dead-peer", 0, "hub silence after which a node abandons its connection and redials; 0 = 4x the heartbeat period")
		causalOn  = flag.Bool("causal", false, "trace this worker's nodes and request trace-ID propagation (effective when the hub's run set -causal too); needs -trace-out")
		causalOut = flag.String("trace-out", "", "write this worker's causal trace stream to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file, got %d", flag.NArg())
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required")
	}
	if *varsArg == "" {
		return fmt.Errorf("-vars is required")
	}
	addrs := strings.Split(*connect, ",")
	vars, err := parseVars(*varsArg)
	if err != nil {
		return err
	}

	problem, err := load(flag.Arg(0), *colors)
	if err != nil {
		return err
	}

	opts := discsp.Options{
		InitialSeed: *seed,
		WireCodec:   *wireCodec,
		WireNoBatch: *noBatch,
	}
	switch *algo {
	case "awc":
		opts.Algorithm = discsp.AWC
	case "db":
		opts.Algorithm = discsp.DB
	case "abt":
		opts.Algorithm = discsp.ABT
	default:
		return fmt.Errorf("unknown algorithm %q (want awc, db, or abt)", *algo)
	}
	switch *learn {
	case "rslv":
		opts.Learning = discsp.LearnResolvent
	case "mcs":
		opts.Learning = discsp.LearnMCS
	case "none":
		opts.Learning = discsp.LearnNone
	default:
		return fmt.Errorf("unknown learning %q (want rslv, mcs, or none)", *learn)
	}
	opts.LearningSizeBound = *k
	ret, err := discsp.ParseRetention(*retention)
	if err != nil {
		return err
	}
	opts.Retention = ret

	// Causal tracing is per-process: this worker's spans and stamped trace
	// IDs go to its own stream file, self-consistent on its own (message
	// edges into sibling workers resolve in their streams).
	var ct *discsp.Telemetry
	if *causalOn != (*causalOut != "") {
		return fmt.Errorf("-causal and -trace-out go together")
	}
	if *causalOn {
		f, err := os.Create(*causalOut)
		if err != nil {
			return err
		}
		defer f.Close()
		ct = discsp.NewTelemetry(nil, f)
		defer func() {
			if err := ct.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "dcspnode: causal trace stream:", err)
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "dcspnode: %d nodes (%s) dialing %d relays\n",
		len(vars), *varsArg, len(addrs))
	stats, err := discsp.SolveTCPWorker(problem, opts, discsp.TCPWorkerOptions{
		Addrs:           addrs,
		Vars:            vars,
		DrainWindow:     *drainWin,
		ConnectTimeout:  *connTO,
		Checksum:        *wireCRC,
		Heartbeat:       *heartbeat,
		DeadPeerTimeout: *deadPeer,
		Causal:          ct,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dcspnode: hub reported run over (reconnects=%d retrans=%d dups=%d corrupt_frames=%d)\n",
		stats.Reconnects, stats.Retransmits, stats.DuplicatesSuppressed, stats.CorruptFrames)
	return nil
}

// parseVars parses the -vars syntax: comma-separated values, ranges, and
// strided ranges ("3", "0-9", "0-49:2"). Duplicates are rejected — two
// workers racing to own one variable is a config error the hub cannot see.
func parseVars(s string) ([]int, error) {
	seen := make(map[int]bool)
	var out []int
	add := func(v int) error {
		if seen[v] {
			return fmt.Errorf("-vars lists variable %d twice", v)
		}
		seen[v] = true
		out = append(out, v)
		return nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi, step := part, part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			st, err := strconv.Atoi(part[i+1:])
			if err != nil || st <= 0 {
				return nil, fmt.Errorf("bad stride in -vars term %q", part)
			}
			step = st
			part = part[:i]
			lo, hi = part, part
		}
		if i := strings.IndexByte(part, '-'); i > 0 {
			lo, hi = part[:i], part[i+1:]
		}
		l, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("bad -vars term %q", part)
		}
		h, err := strconv.Atoi(hi)
		if err != nil || h < l {
			return nil, fmt.Errorf("bad -vars term %q", part)
		}
		for v := l; v <= h; v += step {
			if err := add(v); err != nil {
				return nil, err
			}
		}
	}
	sort.Ints(out)
	return out, nil
}

func load(path string, colors int) (*discsp.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".cnf":
		cnf, err := csp.ParseCNF(f)
		if err != nil {
			return nil, err
		}
		return cnf.Problem()
	case ".col":
		g, err := csp.ParseCOL(f)
		if err != nil {
			return nil, err
		}
		return g.Problem(colors)
	case ".json":
		return csp.ReadProblemJSON(f)
	default:
		return nil, fmt.Errorf("cannot infer format of %q (want .cnf, .col, or .json)", path)
	}
}
