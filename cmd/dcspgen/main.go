// Command dcspgen generates benchmark instances of the paper's three
// families and writes them in DIMACS exchange formats (COL for coloring,
// CNF for SAT).
//
// Usage:
//
//	dcspgen -family d3c  -n 60 -seed 1            # 3-coloring, m=2.7n, COL to stdout
//	dcspgen -family d3s  -n 50 -seed 2 -o a.cnf   # forced 3SAT, m=4.3n
//	dcspgen -family d3s1 -n 50 -seed 3            # single-solution 3SAT, m=3.4n
//	dcspgen -family d3c  -n 100 -m 250            # override the edge/clause count
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcspgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family    = flag.String("family", "d3c", "instance family: d3c, d3s, d3s1, or bin")
		n         = flag.Int("n", 60, "number of variables (nodes)")
		m         = flag.Int("m", 0, "number of constraints; 0 means the paper's ratio (2.7n / 4.3n / 3.4n)")
		colors    = flag.Int("colors", 3, "colors for the d3c family")
		domain    = flag.Int("domain", 3, "domain size for the bin family")
		density   = flag.Float64("density", 0.3, "constrained-pair fraction p1 for the bin family")
		tightness = flag.Float64("tightness", 0.3, "prohibited-combination fraction p2 for the bin family")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("o", "", "output file; empty means stdout")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *family {
	case "d3c":
		edges := *m
		if edges == 0 {
			edges = int(math.Round(2.7 * float64(*n)))
		}
		inst, err := gen.Coloring(*n, edges, *colors, *seed)
		if err != nil {
			return err
		}
		return csp.WriteCOL(w, inst.Graph,
			fmt.Sprintf("solvable %d-coloring, n=%d m=%d seed=%d (Minton et al. method)", *colors, *n, edges, *seed))
	case "d3s":
		clauses := *m
		if clauses == 0 {
			clauses = int(math.Round(4.3 * float64(*n)))
		}
		inst, err := gen.ForcedSAT3(*n, clauses, *seed)
		if err != nil {
			return err
		}
		return csp.WriteCNF(w, inst.CNF,
			fmt.Sprintf("forced satisfiable 3SAT, n=%d m=%d seed=%d (3SAT-GEN style)", *n, clauses, *seed))
	case "d3s1":
		clauses := *m
		if clauses == 0 {
			clauses = int(math.Round(3.4 * float64(*n)))
		}
		inst, err := gen.UniqueSAT3(*n, clauses, *seed)
		if err != nil {
			return err
		}
		return csp.WriteCNF(w, inst.CNF,
			fmt.Sprintf("single-solution 3SAT, n=%d m=%d seed=%d (3ONESAT-GEN style)", *n, clauses, *seed))
	case "bin":
		inst, err := gen.RandomBinaryCSP(gen.BinaryCSPConfig{
			Vars:       *n,
			DomainSize: *domain,
			Density:    *density,
			Tightness:  *tightness,
			Force:      true,
		}, *seed)
		if err != nil {
			return err
		}
		return csp.WriteProblemJSON(w, inst.Problem)
	default:
		return fmt.Errorf("unknown family %q (want d3c, d3s, d3s1, or bin)", *family)
	}
}
