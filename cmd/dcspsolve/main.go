// Command dcspsolve solves one DIMACS instance (CNF or COL) with a chosen
// distributed algorithm and prints the paper's cost metrics.
//
// Usage:
//
//	dcspsolve -algo awc -learn rslv problem.cnf
//	dcspsolve -algo awc -learn rslv -k 3 graph.col     # AWC+3rdRslv
//	dcspsolve -algo db graph.col
//	dcspsolve -algo awc -async problem.cnf             # goroutine runtime
//	dcspsolve -algo central problem.cnf                # centralized oracle
//	dcspsolve -trials 20 -workers 8 problem.cnf        # 20 seeded trials, pooled
//	dcspsolve -async -faults chaos problem.cnf         # adversarial network
//	dcspsolve -trials 50 -journal t.jsonl problem.cnf  # journal trials
//	dcspsolve -trials 50 -journal t.jsonl -resume ...  # resume after a crash
//	dcspsolve -causal -trace-out t.jsonl problem.cnf   # causal trace (dcsptrace)
//
// File type is inferred from the extension: .cnf is DIMACS CNF, .col is
// DIMACS COL (solved as 3-coloring unless -colors overrides).
//
// -faults injects a deterministic fault schedule into the -async and -tcp
// runtimes (message drops, duplication, delay, agent crash-restart,
// partition windows); the printed line then includes the transport
// counters. -journal appends every completed trial of a -trials run to an
// fsync'd JSONL file; rerunning with -resume replays journaled trials
// instead of recomputing them, and the aggregate line is bit-identical to
// an uninterrupted run's.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/discsp/discsp"
	"github.com/discsp/discsp/internal/central"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/experiments"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/stats"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcspsolve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo      = flag.String("algo", "awc", "algorithm: awc, db, abt, central, or wcs")
		learn     = flag.String("learn", "rslv", "AWC learning: rslv, mcs, or none")
		k         = flag.Int("k", 0, "size bound for kthRslv learning; 0 = unrestricted")
		colors    = flag.Int("colors", 3, "colors for .col inputs")
		seed      = flag.Int64("seed", 1, "seed for random initial values")
		maxCycles = flag.Int("maxcycles", 0, "cycle cutoff; 0 = 10000")
		useAsync  = flag.Bool("async", false, "run on the asynchronous goroutine runtime")
		useTCP    = flag.Bool("tcp", false, "run over a loopback TCP hub (one socket per agent)")
		shards    = flag.Int("shards", 0, "split the -tcp hub across N relay listeners; 0 = one")
		wireCodec = flag.String("wire-codec", "binary", "-tcp wire codec: binary or json (negotiated per connection)")
		noBatch   = flag.Bool("wire-nobatch", false, "disable -tcp frame batching")
		wireCRC   = flag.Bool("wire-crc", false, "arm the CRC32C frame trailer on -tcp binary connections (workers opt in with dcspnode -wire-crc)")
		heartbeat = flag.Duration("heartbeat", 0, "-tcp liveness beacon period on every hub-node link; 0 = 500ms default, negative disables")
		deadPeer  = flag.Duration("dead-peer", 0, "-tcp silence after which the hub declares a node dead; 0 = 4x the heartbeat period")
		reconGr   = flag.Duration("reconnect-grace", 0, "how long the -tcp hub parks a dead node's frames awaiting its reconnection before failing the run; 0 = 3s default, negative fails immediately")
		tcpListen = flag.String("tcp-listen", "", "bind the -tcp relays to these comma-separated host:port addresses (implies the shard count)")
		tcpExt    = flag.Bool("tcp-external", false, "-tcp hub only: agents live in external dcspnode workers")
		timeout   = flag.Duration("timeout", 0, "async wall-clock limit; 0 = 30s")
		trials    = flag.Int("trials", 1, "random-initial-value trials (seed, seed+1, ...); >1 prints cell-style aggregates")
		workers   = flag.Int("workers", 0, "concurrent trial workers for -trials; 0 = all CPUs, 1 = serial")
		verbose   = flag.Bool("v", false, "print the solution assignment")
		traceOut  = flag.String("trace", "", "write a JSONL cycle trace to this file (sync runs only)")
		block     = flag.Int("block", 0, "variables per agent; >1 runs the multi-variable AWC extension")
		faultsArg = flag.String("faults", "", "fault profile for -async/-tcp runs; syntax: "+faults.ProfileSyntax)
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		journal   = flag.String("journal", "", "append each completed trial of a -trials run to this JSONL journal")
		resume    = flag.Bool("resume", false, "replay trials already in -journal instead of recomputing them")
		retention = flag.String("retention", "all", "nogood-store retention policy: all, lru:<cap>, or activity:<cap> (cap bounds learned nogoods per agent)")
		warmCache = flag.String("warm-cache", "", "persistent warm-start nogood cache file: seed AWC from it before solving, harvest survivors into it after (sync runs)")

		causalOn  = flag.Bool("causal", false, "attach the causal-tracing layer: deterministic trace IDs on every message, one span per agent activation, nogood lineage (read the stream with dcsptrace)")
		causalOut = flag.String("trace-out", "", "write the causal trace stream to this file (default: interleave spans with the -telemetry stream)")

		telemetryOut = flag.String("telemetry", "", "write the schema-2 telemetry JSONL stream to this file")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/vars, and /debug/pprof on this address (e.g. :9090, or :0 for an ephemeral port)")
		metricsHold  = flag.Duration("metrics-hold", 0, "keep the -metrics-addr endpoint up this long after the run finishes (for scrapers)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		watchdog     = flag.Duration("watchdog-cadence", 0, "stall-watchdog sampling period for -async/-tcp; 0 = 25ms")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file, got %d", flag.NArg())
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeMemProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, "dcspsolve: heap profile:", err)
			}
		}()
	}

	problem, err := load(flag.Arg(0), *colors)
	if err != nil {
		return err
	}
	fmt.Printf("problem: %d variables, %d nogoods\n", problem.NumVars(), problem.NumNogoods())

	if *algo == "central" {
		startedAt := time.Now()
		sol, ok := central.New(problem).Solve()
		fmt.Printf("central: solved=%v in %v\n", ok, time.Since(startedAt))
		if ok && *verbose {
			printAssignment(sol)
		}
		return nil
	}
	if *algo == "wcs" {
		startedAt := time.Now()
		res := central.WeakCommitment(problem, nil, central.WCSOptions{})
		fmt.Printf("wcs: solved=%v insoluble=%v restarts=%d nogoods=%d checks=%d in %v\n",
			res.Solved, res.Insoluble, res.Restarts, res.NogoodsRecorded, res.Checks, time.Since(startedAt))
		if res.Solved && *verbose {
			printAssignment(res.Solution)
		}
		return nil
	}

	opts := discsp.Options{
		InitialSeed: *seed,
		MaxCycles:   *maxCycles,
		Timeout:     *timeout,
	}
	switch *algo {
	case "awc":
		opts.Algorithm = discsp.AWC
	case "db":
		opts.Algorithm = discsp.DB
	case "abt":
		opts.Algorithm = discsp.ABT
	default:
		return fmt.Errorf("unknown algorithm %q (want awc, db, abt, central, or wcs)", *algo)
	}
	switch *learn {
	case "rslv":
		opts.Learning = discsp.LearnResolvent
	case "mcs":
		opts.Learning = discsp.LearnMCS
	case "none":
		opts.Learning = discsp.LearnNone
	default:
		return fmt.Errorf("unknown learning %q (want rslv, mcs, or none)", *learn)
	}
	opts.LearningSizeBound = *k
	ret, err := discsp.ParseRetention(*retention)
	if err != nil {
		return err
	}
	opts.Retention = ret
	var cache *discsp.NogoodCache
	if *warmCache != "" {
		if opts.Algorithm != discsp.AWC {
			return fmt.Errorf("-warm-cache applies to AWC only")
		}
		if *useAsync || *useTCP {
			return fmt.Errorf("-warm-cache needs the synchronous runtime (harvesting is sync-only)")
		}
		cache, err = discsp.LoadNogoodCache(*warmCache)
		if err != nil {
			return err
		}
		opts.WarmCache = cache
		fmt.Fprintf(os.Stderr, "dcspsolve: warm cache %s holds %d nogoods\n", *warmCache, cache.Len())
		defer func() {
			if err := cache.Save(*warmCache); err != nil {
				fmt.Fprintln(os.Stderr, "dcspsolve: warm cache save:", err)
			}
		}()
	}

	if *faultsArg != "" {
		if !*useAsync && !*useTCP {
			return fmt.Errorf("-faults needs a network runtime (-async or -tcp); the synchronous simulator has no network to break")
		}
		opts.FaultProfile = *faultsArg
		opts.FaultSeed = *faultSeed
	}
	if *resume && *journal == "" {
		return fmt.Errorf("-resume needs -journal")
	}
	if (*shards != 0 || *tcpListen != "" || *tcpExt) && !*useTCP {
		return fmt.Errorf("-shards, -tcp-listen, and -tcp-external need -tcp")
	}
	opts.TCPShards = *shards
	opts.WireCodec = *wireCodec
	opts.WireNoBatch = *noBatch
	opts.WireChecksum = *wireCRC
	opts.TCPHeartbeat = *heartbeat
	opts.TCPDeadPeerTimeout = *deadPeer
	opts.TCPReconnectGrace = *reconGr
	opts.TCPExternal = *tcpExt
	if *tcpListen != "" {
		opts.TCPListen = strings.Split(*tcpListen, ",")
	}
	if *tcpExt {
		opts.TCPOnListen = func(addrs []string) {
			fmt.Fprintf(os.Stderr, "dcspsolve: relays listening on %s; waiting for dcspnode workers\n",
				strings.Join(addrs, ","))
		}
	}
	opts.WatchdogCadence = *watchdog

	// Telemetry: one registry backs both the optional JSONL stream and the
	// optional live metrics endpoint; attaching either never changes run
	// results (the layer is observationally inert).
	var tel *discsp.Telemetry
	if *telemetryOut != "" || *metricsAddr != "" {
		reg := discsp.NewMetricsRegistry()
		var stream io.Writer
		if *telemetryOut != "" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				return err
			}
			defer f.Close()
			stream = f
		}
		tel = discsp.NewTelemetry(reg, stream)
		if *metricsAddr != "" {
			srv, err := discsp.ServeMetrics(*metricsAddr, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "dcspsolve: serving metrics at http://%s/metrics\n", srv.Addr)
			if *metricsHold > 0 {
				defer time.Sleep(*metricsHold)
			}
		}
		defer func() {
			if err := tel.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "dcspsolve: telemetry stream:", err)
			}
		}()
	}

	// Causal tracing: the span stream goes to its own -trace-out file, or
	// interleaves with the -telemetry stream. A trace stream holds exactly
	// one run (trace IDs are unique per run), so -trials > 1 is rejected.
	if *causalOut != "" && !*causalOn {
		return fmt.Errorf("-trace-out needs -causal")
	}
	if *causalOn {
		if *trials > 1 {
			return fmt.Errorf("-causal traces a single run; drop -trials or set it to 1")
		}
		if *block > 1 {
			return fmt.Errorf("-causal does not support the -block multi-variable path")
		}
		switch {
		case *causalOut != "":
			f, err := os.Create(*causalOut)
			if err != nil {
				return err
			}
			defer f.Close()
			ct := discsp.NewTelemetry(nil, f)
			defer func() {
				if err := ct.Flush(); err != nil {
					fmt.Fprintln(os.Stderr, "dcspsolve: causal trace stream:", err)
				}
			}()
			opts.Causal = ct
		case tel != nil:
			opts.Causal = tel
		default:
			return fmt.Errorf("-causal needs -trace-out FILE (or -telemetry FILE) to receive the span stream")
		}
	}

	if *trials > 1 {
		if *useAsync || *useTCP || *traceOut != "" || *block > 1 {
			return fmt.Errorf("-trials needs the default synchronous single-variable path (no -async, -tcp, -trace, -block)")
		}
		var j *experiments.Journal
		if *journal != "" {
			meta := experiments.JournalMeta{SeedBase: *seed, MaxCycles: *maxCycles}
			var err error
			j, err = experiments.OpenJournal(*journal, meta, *resume)
			if err != nil {
				return err
			}
			defer j.Close()
			if *resume {
				fmt.Fprintf(os.Stderr, "dcspsolve: resuming from %s (%d trials journaled)\n", *journal, j.Recovered())
			}
		}
		// A bounded retention policy is part of the configuration a journal
		// key binds, so resumed runs never mix policies; the unbounded
		// default keeps the legacy key format.
		learnLabel := *learn + ret.Suffix()
		return runTrials(problem, opts, *trials, *workers, *verbose, j, learnLabel, tel)
	}
	if *journal != "" {
		return fmt.Errorf("-journal needs -trials > 1 (a single run has nothing to resume)")
	}
	opts.Telemetry = tel

	var rec *trace.Recorder
	if *traceOut != "" {
		if *useAsync {
			return fmt.Errorf("-trace requires a synchronous run")
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = trace.NewRecorder(f)
		rec.Start(trace.Meta{
			Algorithm: fmt.Sprintf("%s/%s", opts.Algorithm, *learn),
			Vars:      problem.NumVars(),
			Nogoods:   problem.NumNogoods(),
		})
		opts.Trace = rec.Hook()
	}

	var res discsp.Result
	switch {
	case *useTCP:
		res, err = discsp.SolveTCP(problem, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%s (tcp): solved=%v insoluble=%v messages=%d checks=%d duration=%v binary_conns=%d%s\n",
			opts.Algorithm, res.Solved, res.Insoluble, res.Messages, res.TotalChecks,
			res.Duration, res.BinaryConns, res.Transport().Suffix())
	case *useAsync:
		res, err = discsp.SolveAsync(problem, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%s (async): solved=%v insoluble=%v messages=%d checks=%d duration=%v%s\n",
			opts.Algorithm, res.Solved, res.Insoluble, res.Messages, res.TotalChecks, res.Duration, res.Transport().Suffix())
	case *block > 1:
		res, err = discsp.SolvePartitioned(problem, discsp.UniformPartition(problem.NumVars(), *block), discsp.PartitionedOptions{
			LearningSizeBound: *k,
			InitialSeed:       *seed,
			MaxCycles:         *maxCycles,
		})
		if err != nil {
			return err
		}
		fmt.Printf("multiAWC (block=%d): solved=%v insoluble=%v cycle=%d maxcck=%d messages=%d\n",
			*block, res.Solved, res.Insoluble, res.Cycles, res.MaxCCK, res.Messages)
	default:
		res, err = discsp.Solve(problem, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%s: solved=%v insoluble=%v cycle=%d maxcck=%d messages=%d\n",
			opts.Algorithm, res.Solved, res.Insoluble, res.Cycles, res.MaxCCK, res.Messages)
	}
	if rec != nil {
		rec.End(sim.Result{
			Solved:      res.Solved,
			Insoluble:   res.Insoluble,
			Cycles:      res.Cycles,
			MaxCCK:      res.MaxCCK,
			TotalChecks: res.TotalChecks,
			Messages:    int(res.Messages),
		})
		if err := rec.Flush(); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if *verbose && len(res.MessagesByType) > 0 {
		kinds := make([]string, 0, len(res.MessagesByType))
		for k := range res.MessagesByType {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("  %-18s %d\n", k, res.MessagesByType[k])
		}
	}
	if res.Solved && *verbose {
		printAssignment(res.Assignment)
	}
	return nil
}

// writeMemProfile snapshots the heap (after a GC, so the profile reflects
// live objects) into path.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// runTrials solves the instance from `trials` different random initial
// assignments (seeds seed, seed+1, ...), fanned across the worker pool,
// and prints per-trial lines plus the experiment harness's cell-style
// aggregates. Results are index-addressed, so the output is identical for
// every worker count; a progress line goes to stderr every ~2s.
//
// With a journal, each completed trial is durably appended under a key
// binding the algorithm configuration and seed; on -resume, journaled
// trials are replayed into the same slots, so the aggregate line cannot
// depend on where the previous run died.
func runTrials(problem *discsp.Problem, opts discsp.Options, trials, workers int, verbose bool, j *experiments.Journal, learn string, tel *discsp.Telemetry) error {
	// Trials run concurrently, so the workers share only the (atomic)
	// metrics registry; the JSONL stream is written here, one trial event
	// per slot in index order, so it is identical for every worker count.
	var regOnly *discsp.Telemetry
	if tel != nil {
		regOnly = discsp.NewTelemetry(tel.Registry(), nil)
		tel.Emit(telemetry.Event{
			Kind:      telemetry.KindMeta,
			Runtime:   "sync",
			Algorithm: opts.AlgorithmName(),
			Vars:      problem.NumVars(),
			Nogoods:   problem.NumNogoods(),
		})
	}
	results := make([]discsp.Result, trials)
	progress := experiments.ProgressPrinter(os.Stderr, 2*time.Second)
	trialKey := func(i int) string {
		return fmt.Sprintf("trial/%s/%s/k%d/seed%d", opts.Algorithm, learn, opts.LearningSizeBound, opts.InitialSeed+int64(i))
	}
	var (
		mu   sync.Mutex
		done int
	)
	err := experiments.ForEach(workers, trials, func(i int) error {
		tick := func() {
			mu.Lock()
			done++
			progress(done, trials)
			mu.Unlock()
		}
		if j != nil && j.Lookup(trialKey(i), &results[i]) {
			tick()
			return nil
		}
		o := opts
		o.InitialSeed = opts.InitialSeed + int64(i)
		o.Telemetry = regOnly
		res, err := discsp.Solve(problem, o)
		if err != nil {
			return fmt.Errorf("trial %d (seed %d): %w", i, o.InitialSeed, err)
		}
		results[i] = res
		if j != nil {
			if err := j.Record(trialKey(i), res); err != nil {
				return err
			}
		}
		tick()
		return nil
	})
	if err != nil {
		return err
	}
	var (
		cycle, maxcck stats.Sample
		solved        stats.Counter
	)
	cell := fmt.Sprintf("%s/%s/k%d", opts.Algorithm, learn, opts.LearningSizeBound)
	for i, res := range results {
		if verbose {
			fmt.Printf("  trial %-3d seed=%-6d solved=%-5v cycle=%-6d maxcck=%d\n",
				i, opts.InitialSeed+int64(i), res.Solved, res.Cycles, res.MaxCCK)
		}
		tel.Emit(telemetry.Event{
			Kind:   telemetry.KindTrial,
			Cell:   cell,
			Trial:  i,
			Seed:   opts.InitialSeed + int64(i),
			Solved: res.Solved,
			Cycles: res.Cycles,
			MaxCCK: res.MaxCCK,
		})
		cycle.Add(float64(res.Cycles))
		maxcck.Add(float64(res.MaxCCK))
		solved.Observe(res.Solved)
	}
	tel.EmitSnapshot()
	fmt.Printf("%s: trials=%d cycle=%.1f maxcck=%.1f %%=%.0f\n",
		opts.Algorithm, trials, cycle.Mean(), maxcck.Mean(), solved.Percent())
	return nil
}

func load(path string, colors int) (*discsp.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".cnf":
		cnf, err := csp.ParseCNF(f)
		if err != nil {
			return nil, err
		}
		return cnf.Problem()
	case ".col":
		g, err := csp.ParseCOL(f)
		if err != nil {
			return nil, err
		}
		return g.Problem(colors)
	case ".json":
		return csp.ReadProblemJSON(f)
	default:
		return nil, fmt.Errorf("cannot infer format of %q (want .cnf, .col, or .json)", path)
	}
}

func printAssignment(a discsp.SliceAssignment) {
	for v, val := range a {
		fmt.Printf("x%d = %d\n", v, val)
	}
}
