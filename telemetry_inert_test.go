package discsp_test

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/discsp/discsp"
	"github.com/discsp/discsp/internal/experiments"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/trace"
)

// hardColoring returns a 3-coloring instance dense enough that AWC actually
// learns nogoods (a chain solves in a couple of cycles without learning).
func hardColoring(t *testing.T) *discsp.Problem {
	t.Helper()
	col, err := discsp.GenerateColoring(20, 54, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	return col.Problem
}

// runSyncWithTrace runs Solve and captures the v1 trace byte stream, the
// most sensitive observable a synchronous run has: every per-cycle message
// and check count, byte for byte.
func runSyncWithTrace(t *testing.T, p *discsp.Problem, opts discsp.Options) (discsp.Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	opts.Trace = rec.Hook()
	res, err := discsp.Solve(p, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("trace flush: %v", err)
	}
	return res, buf.Bytes()
}

// TestTelemetryInertSync pins the tentpole's non-negotiable: attaching the
// full telemetry bundle (registry + event stream) to a synchronous run
// changes nothing — cycles, maxcck, totals, the assignment, and the exact
// trace bytes are bit-identical with telemetry on and off, across learners.
func TestTelemetryInertSync(t *testing.T) {
	p := hardColoring(t)
	learners := []struct {
		name string
		opts discsp.Options
	}{
		{"rslv", discsp.Options{Learning: discsp.LearnResolvent}},
		{"mcs", discsp.Options{Learning: discsp.LearnMCS}},
		{"3rdRslv", discsp.Options{Learning: discsp.LearnResolvent, LearningSizeBound: 3}},
		{"none", discsp.Options{Learning: discsp.LearnNone}},
	}
	for _, lc := range learners {
		t.Run(lc.name, func(t *testing.T) {
			opts := lc.opts
			opts.InitialSeed = 11

			off, offTrace := runSyncWithTrace(t, p, opts)

			var stream bytes.Buffer
			opts.Telemetry = discsp.NewTelemetry(discsp.NewMetricsRegistry(), &stream)
			on, onTrace := runSyncWithTrace(t, p, opts)
			if err := opts.Telemetry.Flush(); err != nil {
				t.Fatalf("telemetry flush: %v", err)
			}

			if off.Solved != on.Solved || off.Insoluble != on.Insoluble {
				t.Errorf("verdict changed: off=%v/%v on=%v/%v", off.Solved, off.Insoluble, on.Solved, on.Insoluble)
			}
			if off.Cycles != on.Cycles {
				t.Errorf("cycles changed: off=%d on=%d", off.Cycles, on.Cycles)
			}
			if off.MaxCCK != on.MaxCCK {
				t.Errorf("maxcck changed: off=%d on=%d", off.MaxCCK, on.MaxCCK)
			}
			if off.TotalChecks != on.TotalChecks || off.Messages != on.Messages {
				t.Errorf("totals changed: off checks=%d msgs=%d, on checks=%d msgs=%d",
					off.TotalChecks, off.Messages, on.TotalChecks, on.Messages)
			}
			if !reflect.DeepEqual(off.Assignment, on.Assignment) {
				t.Errorf("assignment changed")
			}
			if !reflect.DeepEqual(off.MessagesByType, on.MessagesByType) {
				t.Errorf("message profile changed: off=%v on=%v", off.MessagesByType, on.MessagesByType)
			}
			if !bytes.Equal(offTrace, onTrace) {
				t.Errorf("trace bytes changed with telemetry on (%d vs %d bytes)", len(offTrace), len(onTrace))
			}

			events, err := telemetry.Read(&stream)
			if err != nil {
				t.Fatalf("telemetry stream unreadable: %v", err)
			}
			s := telemetry.Summarize(events)
			if s.Cycles != off.Cycles || s.MaxCCK != off.MaxCCK {
				t.Errorf("stream end event disagrees with result: stream cycles=%d maxcck=%d, result %d/%d",
					s.Cycles, s.MaxCCK, off.Cycles, off.MaxCCK)
			}
			if len(s.Agents) != p.NumVars() {
				t.Errorf("stream has %d agent events, want %d", len(s.Agents), p.NumVars())
			}
		})
	}
}

// TestTelemetryInertAsync pins that telemetry does not perturb the
// asynchronous runtime's outcome and that its stream carries the watchdog
// samples and per-agent quiescence totals.
func TestTelemetryInertAsync(t *testing.T) {
	p := hardColoring(t)
	opts := discsp.Options{InitialSeed: 11}
	off, err := discsp.SolveAsync(p, opts)
	if err != nil {
		t.Fatalf("SolveAsync (telemetry off): %v", err)
	}

	var stream bytes.Buffer
	opts.Telemetry = discsp.NewTelemetry(discsp.NewMetricsRegistry(), &stream)
	on, err := discsp.SolveAsync(p, opts)
	if err != nil {
		t.Fatalf("SolveAsync (telemetry on): %v", err)
	}
	if err := opts.Telemetry.Flush(); err != nil {
		t.Fatalf("telemetry flush: %v", err)
	}

	if off.Solved != on.Solved {
		t.Errorf("verdict changed: off=%v on=%v", off.Solved, on.Solved)
	}
	if on.Solved && !p.IsSolution(on.Assignment) {
		t.Errorf("instrumented run produced an invalid solution")
	}

	events, err := telemetry.Read(&stream)
	if err != nil {
		t.Fatalf("telemetry stream unreadable: %v", err)
	}
	s := telemetry.Summarize(events)
	if s.Runtime != "async" {
		t.Errorf("stream runtime = %q, want async", s.Runtime)
	}
	if len(s.Agents) != p.NumVars() {
		t.Errorf("stream has %d agent events, want %d", len(s.Agents), p.NumVars())
	}
	var checks int64
	for _, a := range s.Agents {
		checks += a.Checks
	}
	if checks != on.TotalChecks {
		t.Errorf("per-agent checks sum to %d, result reports %d", checks, on.TotalChecks)
	}
	if !s.Ended {
		t.Errorf("stream missing end event")
	}
}

// TestTelemetryInertTCP does the same over the loopback TCP runtime, which
// additionally emits per-link hub counters.
func TestTelemetryInertTCP(t *testing.T) {
	p := chain(t, 8, 3)
	opts := discsp.Options{InitialSeed: 3}
	off, err := discsp.SolveTCP(p, opts)
	if err != nil {
		t.Fatalf("SolveTCP (telemetry off): %v", err)
	}

	var stream bytes.Buffer
	opts.Telemetry = discsp.NewTelemetry(discsp.NewMetricsRegistry(), &stream)
	on, err := discsp.SolveTCP(p, opts)
	if err != nil {
		t.Fatalf("SolveTCP (telemetry on): %v", err)
	}
	if err := opts.Telemetry.Flush(); err != nil {
		t.Fatalf("telemetry flush: %v", err)
	}

	if off.Solved != on.Solved {
		t.Errorf("verdict changed: off=%v on=%v", off.Solved, on.Solved)
	}
	events, err := telemetry.Read(&stream)
	if err != nil {
		t.Fatalf("telemetry stream unreadable: %v", err)
	}
	links := 0
	for _, ev := range events {
		if ev.Kind == telemetry.KindLink {
			links++
			if ev.SeqHigh <= 0 {
				t.Errorf("link %d->%d has no traffic recorded", ev.From, ev.To)
			}
		}
	}
	if links == 0 {
		t.Errorf("stream has no link events")
	}
	s := telemetry.Summarize(events)
	if s.Runtime != "tcp" {
		t.Errorf("stream runtime = %q, want tcp", s.Runtime)
	}
	if len(s.Agents) != p.NumVars() {
		t.Errorf("stream has %d agent events, want %d", len(s.Agents), p.NumVars())
	}
}

// TestTelemetryInertAggregates pins that attaching telemetry to the
// experiment harness leaves cell aggregates (the tables' numbers, and via
// the journal's replay path every journaled quantity) bit-identical.
func TestTelemetryInertAggregates(t *testing.T) {
	scale := experiments.QuickScale()
	scale.Ns = []int{10}
	alg := experiments.AWC(experiments.BestLearning(experiments.D3C))

	off, err := experiments.RunCell(experiments.D3C, 10, alg, scale)
	if err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	scale.Telemetry = telemetry.NewRun(telemetry.NewRegistry(), &stream)
	on, err := experiments.RunCell(experiments.D3C, 10, alg, scale)
	if err != nil {
		t.Fatal(err)
	}
	if err := scale.Telemetry.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off, on) {
		t.Errorf("cell aggregates changed with telemetry on:\noff: %+v\non:  %+v", off, on)
	}
	events, err := telemetry.Read(&stream)
	if err != nil {
		t.Fatalf("telemetry stream unreadable: %v", err)
	}
	trials := 0
	for _, ev := range events {
		if ev.Kind == telemetry.KindTrial {
			trials++
		}
	}
	if trials == 0 {
		t.Errorf("stream has no trial events")
	}
}

// TestServeMetricsEndToEnd is the facade-level smoke for -metrics-addr: a
// run instruments a served registry, and the snapshot surfaces on it.
func TestServeMetricsEndToEnd(t *testing.T) {
	reg := discsp.NewMetricsRegistry()
	srv, err := discsp.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := chain(t, 6, 3)
	if _, err := discsp.Solve(p, discsp.Options{Telemetry: discsp.NewTelemetry(reg, nil)}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Gauges) == 0 {
		t.Errorf("registry empty after instrumented run: %+v", snap)
	}
}
