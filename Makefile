# Targets mirror the CI pipeline (.github/workflows/ci.yml) so local runs
# match it exactly: `make ci` is what a green check means.

GO ?= go

# The concurrency-heavy packages the race job covers.
RACE_PKGS = ./internal/async/... ./internal/netrun/... ./internal/multi/... \
            ./internal/sim/... ./internal/experiments/... ./internal/service/... \
            ./internal/causal/...

.PHONY: all build test vet fmt-check race chaos chaos-proc telemetry trace \
        bench-smoke bench-json bench-gate bench-warm bench-wire scale-smoke \
        service-smoke soak staticcheck govulncheck ci

# The paired (ref vs dense) benchmarks bench-json compares.
BENCH_PAIRED = BenchmarkProbeViewCheckLoop|BenchmarkStoreAddPruning|BenchmarkResolventDerivation|BenchmarkTable1Representations

# The wire-throughput pairings and baseline-free invariants shared by
# bench-wire and its slice of bench-gate: each pair measures
# BenchmarkWireThroughput's plain-JSON leg against one upgrade (binary
# codec, frame batching, or both). The headline binary+batched pair must
# beat plain JSON by at least 2x and stay allocation-free per op, and the
# binary codec alone must also clear 2x; json-only batching is reported but
# not floored (it trades latency for fewer syscalls, not raw per-op time).
# The crc pair holds the checksummed binary+batched path to the same 2x
# floor and zero allocs, so frame integrity stays effectively free.
BENCH_WIRE_FLAGS = -pair codec=json_plain:binary_plain \
	-pair batch=json_plain:json_batch \
	-pair binary_batch=json_plain:binary_batch \
	-pair crc=json_plain:binary_batch_crc \
	-min-speedup 'WireThroughput/codec=2,WireThroughput/binary_batch=2,WireThroughput/crc=2' \
	-alloc-free 'WireThroughput/binary_batch,WireThroughput/crc' \
	-note 'before = plain JSON framing, after = the named wire upgrade (binary codec, frame batching, CRC32C trailers, or a combination) over a TCP loopback echo; one op is one envelope round trip'

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 15m ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

race:
	$(GO) test -race -timeout 20m $(RACE_PKGS)

# The fault-injection suite under the race detector: reliable transport,
# crash-restart recovery, and the chaos acceptance matrix (every algorithm
# family reaching its clean-network verdict under seeded drop/dup/crash
# and partition windows). `make chaos CHAOS_LONG=1` additionally runs the
# long sweeps (seeds × schedules × families) the nightly CI job uses.
chaos:
	CHAOS_LONG=$(CHAOS_LONG) $(GO) test -race -timeout 40m ./internal/faults/... ./internal/async/... ./internal/netrun/...

# The process-level chaos job: the liveness/reconnection suite under the
# race detector, then the acceptance harness that SIGKILLs a real dcspnode
# worker mid-solve, relaunches it cold, and requires the verdict and
# assignment to match a clean run of the same seed (gated behind
# CHAOS_PROC because it builds and kills real processes).
chaos-proc:
	$(GO) test -race -timeout 20m -run 'TestWorker|TestDeadPeer|TestReconnect|TestNegativeGrace|TestCorrupt|TestLiveness' ./internal/netrun/
	$(GO) test -race -timeout 10m ./internal/wire/ ./internal/faults/ ./internal/backoff/
	CHAOS_PROC=1 $(GO) test -race -run TestChaosProc -v -timeout 15m ./cmd/dcspnode/

# The telemetry job's gating half: the on/off bit-identical inertness
# tests (results, trace bytes, cell aggregates across all three runtimes)
# and the store-hook accounting tests, under the race detector. The CI job
# additionally smoke-tests the live /metrics endpoint and captures a
# Table-1 telemetry stream.
telemetry:
	$(GO) test -race -timeout 10m -run 'TestTelemetryInert|TestServeMetrics' .
	$(GO) test -race -timeout 5m -run 'TestStore.*Instrument|TestStoreRestore' ./internal/nogood/

# The causal-tracing job (CI trace-smoke): the tracing on/off inertness,
# critical-path, provenance-termination, and failure-path tests under the
# race detector, then the binary smoke — a seeded solve with -causal piped
# through dcsptrace's critical-path and Perfetto exports, asserting a
# non-empty path and valid JSON.
trace:
	$(GO) test -race -timeout 10m -run 'TestCausal' . ./internal/netrun/
	$(GO) test -timeout 5m ./internal/causal/ ./cmd/dcsptrace/
	$(GO) build -o dcspgen ./cmd/dcspgen
	$(GO) build -o dcspsolve ./cmd/dcspsolve
	$(GO) build -o dcsptrace ./cmd/dcsptrace
	./dcspgen -family d3c -n 30 -seed 11 -o trace-smoke.col
	./dcspsolve -causal -trace-out trace-smoke.jsonl -seed 11 trace-smoke.col
	./dcsptrace -critical-path trace-smoke.jsonl | tee trace-smoke-path.txt
	grep -Eq 'critical path: [1-9][0-9]* steps' trace-smoke-path.txt
	./dcsptrace -provenance all trace-smoke.jsonl > /dev/null
	./dcsptrace -perfetto trace-smoke-perfetto.json trace-smoke.jsonl
	python3 -m json.tool trace-smoke-perfetto.json > /dev/null

bench-smoke:
	$(GO) test -bench=BenchmarkTable1 -benchtime=1x -run='^$$' -timeout 10m .

# Regenerates BENCH_2.json: runs the benchmarks that pair a map-backed
# reference variant (/ref) against the dense default (/dense) and converts
# the output into a before/after report. Informational — wall-clock numbers
# vary by machine; the charged check counts they share do not.
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCH_PAIRED)' -benchmem -timeout 20m . \
		| $(GO) run ./cmd/benchjson -o BENCH_2.json

# The blocking CI perf gate: reruns the paired benchmarks and compares
# against the committed BENCH_2.json. Wall-clock gating uses the speedup
# ratio (before/after on the same machine, so runner hardware cancels out)
# with a 15% tolerance; the probe-view check loop additionally fails on any
# allocs/op increase. A legitimate perf change re-baselines by committing
# the output of `make bench-json`.
bench-gate:
	$(GO) test -run='^$$' -bench='$(BENCH_PAIRED)' -benchmem -timeout 20m . \
		| $(GO) run ./cmd/benchjson -o bench-new.json -baseline BENCH_2.json
	$(GO) test -run='^$$' -bench=BenchmarkWireThroughput -benchmem -timeout 20m ./internal/wire/ \
		| $(GO) run ./cmd/benchjson -o bench-wire-new.json $(BENCH_WIRE_FLAGS) \
			-baseline BENCH_7.json -tolerance 0.5

# Regenerates BENCH_7.json: the wire-throughput report comparing JSON vs
# binary framing and plain vs batched delivery over a TCP loopback echo.
# The baseline-free floors in BENCH_WIRE_FLAGS apply here too, so a
# regenerated baseline can never launder the headline speedup away. The
# gate slice above recompares against the committed report with a loose 50%
# tolerance — loopback round-trip ratios drift more across runners than the
# pure-CPU BENCH_2 loops, and the absolute 2x floors are the hard invariant.
bench-wire:
	$(GO) test -run='^$$' -bench=BenchmarkWireThroughput -benchmem -timeout 20m ./internal/wire/ \
		| $(GO) run ./cmd/benchjson -o BENCH_7.json $(BENCH_WIRE_FLAGS)

# The CI scale-smoke job: a 1024-agent solve over 4 sharded relays with
# the binary codec (gated behind SCALE_SMOKE because it opens ~2k real TCP
# connections), then a short coverage-guided fuzz pass over the binary
# codec round trip and the batch splitter.
scale-smoke:
	SCALE_SMOKE=1 $(GO) test -run TestScaleSmoke1k -v -timeout 10m ./internal/netrun/
	$(GO) test -run='^$$' -fuzz=FuzzEnvelopeRoundTrip -fuzztime=10s -timeout 5m ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzBatchSplit -fuzztime=10s -timeout 5m ./internal/wire/

# The dcspd acceptance sequence against the real binary (gated behind
# SERVICE_SMOKE because it builds, kills, and restarts daemon processes):
# overload shedding with 429s, SIGKILL mid-run, restart replaying every
# journaled job to a verdict, SIGTERM drain exiting 0, and a third start
# serving the drained results from the journal.
service-smoke:
	SERVICE_SMOKE=1 $(GO) test -run TestServiceSmoke -v -timeout 10m ./cmd/dcspd/

# Regenerates BENCH_6.json: the warm-start repeat-solve workload (cold vs
# cache-seeded solves of the same instance) across all three families at
# paper sizes, 10 instances x 3 initializations per cell.
bench-warm:
	$(GO) run ./cmd/dcspbench -warmstart all -instances 10 -inits 3 -progress=false \
		-warmout BENCH_6.json

# The nightly retention soak: long bounded-store runs across families and
# both eviction policies, asserting the learned population never exceeds
# the cap and that verdicts match the unbounded reference on the same
# seeds. The short ungated slice runs in every `make test`.
soak:
	RETENTION_SOAK=1 $(GO) test -race -timeout 40m -run 'TestRetentionSoak' ./internal/experiments/

# Static analysis beyond vet. CI installs the tools on the runner; locally
# they are skipped with a notice when not installed (this repo's build
# containers are offline).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

ci: build vet fmt-check staticcheck govulncheck test race chaos chaos-proc telemetry trace bench-smoke bench-gate scale-smoke service-smoke
