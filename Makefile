# Targets mirror the CI pipeline (.github/workflows/ci.yml) so local runs
# match it exactly: `make ci` is what a green check means.

GO ?= go

# The concurrency-heavy packages the race job covers.
RACE_PKGS = ./internal/async/... ./internal/netrun/... ./internal/multi/... \
            ./internal/sim/... ./internal/experiments/...

.PHONY: all build test vet fmt-check race bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 15m ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

race:
	$(GO) test -race -timeout 20m $(RACE_PKGS)

bench-smoke:
	$(GO) test -bench=BenchmarkTable1 -benchtime=1x -run='^$$' -timeout 10m .

ci: build vet fmt-check test race bench-smoke
