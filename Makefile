# Targets mirror the CI pipeline (.github/workflows/ci.yml) so local runs
# match it exactly: `make ci` is what a green check means.

GO ?= go

# The concurrency-heavy packages the race job covers.
RACE_PKGS = ./internal/async/... ./internal/netrun/... ./internal/multi/... \
            ./internal/sim/... ./internal/experiments/...

.PHONY: all build test vet fmt-check race chaos telemetry bench-smoke bench-json ci

# The paired (ref vs dense) benchmarks bench-json compares.
BENCH_PAIRED = BenchmarkProbeViewCheckLoop|BenchmarkStoreAddPruning|BenchmarkResolventDerivation|BenchmarkTable1Representations

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 15m ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

race:
	$(GO) test -race -timeout 20m $(RACE_PKGS)

# The fault-injection suite under the race detector: reliable transport,
# crash-restart recovery, and the chaos acceptance matrix (every algorithm
# family reaching its clean-network verdict under seeded drop/dup/crash
# and partition windows). `make chaos CHAOS_LONG=1` additionally runs the
# long sweeps (seeds × schedules × families) the nightly CI job uses.
chaos:
	CHAOS_LONG=$(CHAOS_LONG) $(GO) test -race -timeout 40m ./internal/faults/... ./internal/async/... ./internal/netrun/...

# The telemetry job's gating half: the on/off bit-identical inertness
# tests (results, trace bytes, cell aggregates across all three runtimes)
# and the store-hook accounting tests, under the race detector. The CI job
# additionally smoke-tests the live /metrics endpoint and captures a
# Table-1 telemetry stream.
telemetry:
	$(GO) test -race -timeout 10m -run 'TestTelemetryInert|TestServeMetrics' .
	$(GO) test -race -timeout 5m -run 'TestStore.*Instrument|TestStoreRestore' ./internal/nogood/

bench-smoke:
	$(GO) test -bench=BenchmarkTable1 -benchtime=1x -run='^$$' -timeout 10m .

# Regenerates BENCH_2.json: runs the benchmarks that pair a map-backed
# reference variant (/ref) against the dense default (/dense) and converts
# the output into a before/after report. Informational — wall-clock numbers
# vary by machine; the charged check counts they share do not.
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCH_PAIRED)' -benchmem -timeout 20m . \
		| $(GO) run ./cmd/benchjson -o BENCH_2.json

ci: build vet fmt-check test race chaos telemetry bench-smoke
