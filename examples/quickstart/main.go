// Quickstart: model a tiny distributed 3-coloring problem with the public
// API, solve it with AWC + resolvent-based nogood learning, and inspect the
// paper's cost metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/discsp/discsp"
)

func main() {
	// The map of Figure 1's flavor: five nodes, each owned by one agent,
	// adjacent nodes must take different colors {0, 1, 2}.
	p := discsp.NewProblemUniform(5, 3)
	edges := [][2]discsp.Var{{0, 4}, {1, 4}, {2, 4}, {3, 4}, {0, 1}, {2, 3}}
	for _, e := range edges {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// A custom nogood beyond the arc constraints: x2=2 ∧ x3=0 ∧ x4=1 is
	// prohibited (the kind of higher-order nogood agents learn and
	// exchange at runtime).
	ng, err := discsp.NewNogood(
		discsp.Lit{Var: 2, Val: 2},
		discsp.Lit{Var: 3, Val: 0},
		discsp.Lit{Var: 4, Val: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.AddNogood(ng); err != nil {
		log.Fatal(err)
	}

	// Solve on the synchronous simulator: AWC with resolvent learning is
	// the zero-value configuration.
	res, err := discsp.Solve(p, discsp.Options{InitialSeed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved=%v in %d cycles (maxcck=%d, %d messages)\n",
		res.Solved, res.Cycles, res.MaxCCK, res.Messages)
	for v := 0; v < p.NumVars(); v++ {
		val, _ := res.Assignment.Lookup(discsp.Var(v))
		fmt.Printf("  agent %d colors its node %d\n", v, val)
	}

	// The same agents run unmodified on a fully asynchronous system: one
	// goroutine per agent, no global clock.
	ares, err := discsp.SolveAsync(p, discsp.Options{InitialSeed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async: solved=%v in %v (%d messages, %d nogood checks)\n",
		ares.Solved, ares.Duration, ares.Messages, ares.TotalChecks)
}
