// Meeting scheduling as a distributed CSP — one of the MAS applications the
// paper's introduction motivates (distributed scheduling, Sycara et al.).
//
// Each meeting is owned by one agent that must pick a time slot. Two
// meetings sharing a participant cannot overlap (not-equal constraints),
// some meetings must not be scheduled in specific slots (unary nogoods,
// e.g. "no board meetings on Friday afternoon"), and one three-way nogood
// encodes a room shortage: three particular meetings cannot all land in the
// morning block together.
//
// The program compares AWC+resolvent learning against the distributed
// breakout algorithm on the same instance — the Table 8–10 comparison in
// miniature.
//
// Run with:
//
//	go run ./examples/meetingscheduler
package main

import (
	"fmt"
	"log"

	"github.com/discsp/discsp"
)

const slots = 5 // Mon..Fri, one meeting slot per day

var slotNames = [slots]string{"Mon", "Tue", "Wed", "Thu", "Fri"}

type meeting struct {
	name         string
	participants []string
}

func main() {
	meetings := []meeting{
		{"eng-standup", []string{"ada", "bob", "cho"}},
		{"design-review", []string{"cho", "dee"}},
		{"board", []string{"eve", "ada"}},
		{"1on1-ada-eve", []string{"ada", "eve"}},
		{"launch-sync", []string{"bob", "dee", "eve"}},
		{"hiring", []string{"cho", "eve"}},
		{"retro", []string{"ada", "bob"}},
	}

	p := discsp.NewProblemUniform(len(meetings), slots)

	// Meetings sharing a participant must take different slots.
	for i := range meetings {
		for j := i + 1; j < len(meetings); j++ {
			if sharesParticipant(meetings[i], meetings[j]) {
				if err := p.AddNotEqual(discsp.Var(i), discsp.Var(j)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// The board never meets on Friday (unary nogood on meeting 2).
	boardFri := discsp.MustNogood(discsp.Lit{Var: 2, Val: 4})
	if err := p.AddNogood(boardFri); err != nil {
		log.Fatal(err)
	}

	// Room shortage: standup, design review, and launch sync cannot all be
	// on Monday (a genuinely ternary nogood).
	crunch := discsp.MustNogood(
		discsp.Lit{Var: 0, Val: 0},
		discsp.Lit{Var: 1, Val: 0},
		discsp.Lit{Var: 4, Val: 0},
	)
	if err := p.AddNogood(crunch); err != nil {
		log.Fatal(err)
	}

	for _, cfg := range []struct {
		label string
		opts  discsp.Options
	}{
		{"AWC+Rslv", discsp.Options{Algorithm: discsp.AWC, Learning: discsp.LearnResolvent, InitialSeed: 3}},
		{"DB", discsp.Options{Algorithm: discsp.DB, InitialSeed: 3}},
	} {
		res, err := discsp.Solve(p, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: solved=%v cycles=%d maxcck=%d\n", cfg.label, res.Solved, res.Cycles, res.MaxCCK)
		if res.Solved {
			for i, m := range meetings {
				val, _ := res.Assignment.Lookup(discsp.Var(i))
				fmt.Printf("  %-14s -> %s (participants: %v)\n", m.name, slotNames[val], m.participants)
			}
		}
	}
}

func sharesParticipant(a, b meeting) bool {
	for _, pa := range a.participants {
		for _, pb := range b.participants {
			if pa == pb {
				return true
			}
		}
	}
	return false
}
