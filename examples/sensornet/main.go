// Distributed resource allocation in a sensor network — the other MAS
// application family the paper's introduction motivates (distributed
// resource allocation, Conry et al.).
//
// A grid of sensors must each choose a radio frequency band. Sensors within
// interference range must use different bands (binary not-equal nogoods),
// and a few sensors have damaged radios restricted to a subset of bands
// (unary nogoods). The per-sensor choice with only local communication is
// exactly a distributed CSP with one variable per agent.
//
// The program solves the network with AWC under three learning strategies
// and prints the paper's cost metrics side by side — Table 1's comparison
// on a realistic topology — then re-runs the winner on the asynchronous
// goroutine runtime with randomized message delays to show the algorithm
// tolerates reordering.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/discsp/discsp"
)

const (
	gridW = 8
	gridH = 6
	bands = 4 // available frequency bands
)

func main() {
	n := gridW * gridH
	p := discsp.NewProblemUniform(n, bands)

	// Interference: 4-neighborhood on the grid (orthogonally adjacent
	// sensors overlap in range). Tighter 8-neighborhood interference makes
	// the 4-band problem zero-slack — every 2x2 block needs all four bands
	// — which AWC still solves synchronously but thrashes on under heavy
	// asynchronous message jitter; see the async package's failure
	// injection tests for that stress.
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			if x+1 < gridW {
				if err := p.AddNotEqual(discsp.Var(y*gridW+x), discsp.Var(y*gridW+x+1)); err != nil {
					log.Fatal(err)
				}
			}
			if y+1 < gridH {
				if err := p.AddNotEqual(discsp.Var(y*gridW+x), discsp.Var((y+1)*gridW+x)); err != nil {
					log.Fatal(err)
				}
			}
			// One diagonal per cell: forms triangles, so three sensors
			// around each corner compete for the four bands.
			if x+1 < gridW && y+1 < gridH {
				if err := p.AddNotEqual(discsp.Var(y*gridW+x), discsp.Var((y+1)*gridW+x+1)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Damaged radios: sensors 5, 17, and 29 cannot use band 0; sensor 29
	// additionally lost band 1.
	for _, restriction := range []discsp.Lit{
		{Var: 5, Val: 0}, {Var: 17, Val: 0}, {Var: 29, Val: 0}, {Var: 29, Val: 1},
	} {
		if err := p.AddNogood(discsp.MustNogood(restriction)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("sensor network: %dx%d grid, %d bands, %d nogoods\n\n",
		gridW, gridH, bands, p.NumNogoods())
	fmt.Printf("%-12s %8s %10s %6s\n", "learning", "cycles", "maxcck", "ok")

	for _, cfg := range []struct {
		label    string
		learning discsp.LearningKind
	}{
		{"Rslv", discsp.LearnResolvent},
		{"Mcs", discsp.LearnMCS},
		{"No", discsp.LearnNone},
	} {
		res, err := discsp.Solve(p, discsp.Options{
			Learning:    cfg.learning,
			InitialSeed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8d %10d %6v\n", cfg.label, res.Cycles, res.MaxCCK, res.Solved)
	}

	// The same agents, fully asynchronous, with message delivery delayed by
	// up to 200µs at random — band allocation still converges.
	res, err := discsp.SolveAsync(p, discsp.Options{
		Learning:    discsp.LearnResolvent,
		InitialSeed: 42,
		MaxJitter:   200 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nasync+jitter: solved=%v in %v (%d messages)\n", res.Solved, res.Duration, res.Messages)
	if res.Solved {
		fmt.Println("\nband map:")
		for y := 0; y < gridH; y++ {
			for x := 0; x < gridW; x++ {
				val, _ := res.Assignment.Lookup(discsp.Var(y*gridW + x))
				fmt.Printf("%d ", val)
			}
			fmt.Println()
		}
	}
}
