// Regional dispatch as a distributed CSP with complex local problems —
// the multi-variable-per-agent setting of the paper's Section 5 (after
// Yokoo & Hirayama ICMAS-98), solved with the block-wise AWC extension.
//
// Three regional dispatch centers each own several trucks. Every truck
// picks a departure window. Constraints:
//
//   - local (inside one center): a center's loading dock serves one truck
//     per window, so its own trucks need pairwise distinct windows;
//   - cross-boundary: trucks from different centers that serve the same
//     corridor would collide, so they also need distinct windows;
//   - unary: some trucks have driver-availability restrictions.
//
// Each agent solves its local dock-scheduling CSP with a complete solver
// and negotiates corridor conflicts with block-level resolvent nogoods.
//
// Run with:
//
//	go run ./examples/dispatch
package main

import (
	"fmt"
	"log"

	"github.com/discsp/discsp"
)

const windows = 4 // departure windows per day

var windowNames = [windows]string{"06:00", "09:00", "12:00", "15:00"}

func main() {
	// Trucks, numbered globally; three centers own consecutive blocks.
	centers := []struct {
		name   string
		trucks []discsp.Var
	}{
		{"north", []discsp.Var{0, 1, 2}},
		{"east", []discsp.Var{3, 4, 5, 6}},
		{"south", []discsp.Var{7, 8}},
	}
	numTrucks := 9
	p := discsp.NewProblemUniform(numTrucks, windows)
	partition := make(discsp.Partition, len(centers))

	// Local dock constraints: distinct windows inside each center.
	for i, c := range centers {
		partition[i] = c.trucks
		for a := 0; a < len(c.trucks); a++ {
			for b := a + 1; b < len(c.trucks); b++ {
				if err := p.AddNotEqual(c.trucks[a], c.trucks[b]); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Corridor conflicts across centers.
	corridors := [][2]discsp.Var{
		{0, 3}, // north truck 0 and east truck 3 share the ring road
		{1, 7}, // north 1 and south 7 share the river bridge
		{4, 8}, // east 4 and south 8 share the tunnel
		{2, 5}, // north 2 and east 5 share the bypass
	}
	for _, c := range corridors {
		if err := p.AddNotEqual(c[0], c[1]); err != nil {
			log.Fatal(err)
		}
	}

	// Driver restrictions: truck 6's driver starts late (no 06:00); truck
	// 8 must leave before noon (no 12:00, no 15:00).
	for _, restriction := range []discsp.Lit{
		{Var: 6, Val: 0}, {Var: 8, Val: 2}, {Var: 8, Val: 3},
	} {
		if err := p.AddNogood(discsp.MustNogood(restriction)); err != nil {
			log.Fatal(err)
		}
	}

	res, err := discsp.SolvePartitioned(p, partition, discsp.PartitionedOptions{InitialSeed: 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatch schedule: solved=%v in %d cycles (maxcck=%d, %d messages)\n\n",
		res.Solved, res.Cycles, res.MaxCCK, res.Messages)
	if !res.Solved {
		return
	}
	for i, c := range centers {
		fmt.Printf("center %s (agent %d):\n", c.name, i)
		for _, truck := range c.trucks {
			w, _ := res.Assignment.Lookup(truck)
			fmt.Printf("  truck %d departs %s\n", truck, windowNames[w])
		}
	}

	// The same problem flattened to one variable per agent, for contrast:
	// more agents, more messages, no local solving.
	flat, err := discsp.Solve(p, discsp.Options{InitialSeed: 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflat AWC (one truck per agent): solved=%v in %d cycles (%d messages)\n",
		flat.Solved, flat.Cycles, flat.Messages)
}
