// Distributed n-queens: the classic DisCSP demonstration (used throughout
// Yokoo's AWC papers). One agent owns one queen, fixed to its own row, and
// chooses the column; attacks between rows become binary nogoods.
//
// The board is solved three ways — AWC on the synchronous simulator, ABT on
// the synchronous simulator, and AWC on the asynchronous goroutine runtime —
// and the resulting board is drawn.
//
// Run with:
//
//	go run ./examples/nqueens        # 16 queens
//	go run ./examples/nqueens -n 32
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/discsp/discsp"
)

func main() {
	n := flag.Int("n", 16, "board size (number of queens)")
	flag.Parse()
	if *n < 4 {
		log.Fatalf("n-queens has no solution for n=%d < 4", *n)
	}

	p := discsp.NewProblemUniform(*n, *n)
	for r1 := 0; r1 < *n; r1++ {
		for r2 := r1 + 1; r2 < *n; r2++ {
			for c1 := 0; c1 < *n; c1++ {
				for c2 := 0; c2 < *n; c2++ {
					sameCol := c1 == c2
					sameDiag := r2-r1 == c2-c1 || r2-r1 == c1-c2
					if !sameCol && !sameDiag {
						continue
					}
					ng := discsp.MustNogood(
						discsp.Lit{Var: discsp.Var(r1), Val: discsp.Value(c1)},
						discsp.Lit{Var: discsp.Var(r2), Val: discsp.Value(c2)},
					)
					if err := p.AddNogood(ng); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}
	fmt.Printf("%d-queens: %d agents, %d nogoods\n\n", *n, *n, p.NumNogoods())

	for _, cfg := range []struct {
		label string
		opts  discsp.Options
	}{
		{"AWC+Rslv (sync)", discsp.Options{Algorithm: discsp.AWC, InitialSeed: 9}},
		{"ABT (sync)", discsp.Options{Algorithm: discsp.ABT, InitialSeed: 9}},
	} {
		res, err := discsp.Solve(p, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s solved=%v cycles=%d maxcck=%d\n", cfg.label, res.Solved, res.Cycles, res.MaxCCK)
	}

	res, err := discsp.SolveAsync(p, discsp.Options{Algorithm: discsp.AWC, InitialSeed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s solved=%v duration=%v messages=%d\n\n", "AWC+Rslv (async)", res.Solved, res.Duration, res.Messages)

	if res.Solved {
		drawBoard(res.Assignment, *n)
	}
}

func drawBoard(a discsp.SliceAssignment, n int) {
	for r := 0; r < n; r++ {
		col, _ := a.Lookup(discsp.Var(r))
		row := make([]string, n)
		for c := range row {
			row[c] = "."
			if c == int(col) {
				row[c] = "Q"
			}
		}
		fmt.Println(strings.Join(row, " "))
	}
}
