package discsp

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/async"
	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/netrun"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/wire"
)

// AlgorithmKind selects the distributed algorithm.
type AlgorithmKind int

const (
	// AWC is asynchronous weak-commitment search with nogood learning —
	// the paper's algorithm and the default.
	AWC AlgorithmKind = iota + 1
	// DB is the distributed breakout algorithm.
	DB
	// ABT is asynchronous backtracking.
	ABT
)

// String implements fmt.Stringer.
func (k AlgorithmKind) String() string {
	switch k {
	case AWC:
		return "AWC"
	case DB:
		return "DB"
	case ABT:
		return "ABT"
	default:
		return fmt.Sprintf("AlgorithmKind(%d)", int(k))
	}
}

// LearningKind selects AWC's nogood-learning strategy.
type LearningKind int

const (
	// LearnResolvent is the paper's resolvent-based learning (default).
	LearnResolvent LearningKind = iota + 1
	// LearnMCS is mcs-based (minimum conflict set) learning.
	LearnMCS
	// LearnNone disables learning (the agent breaks deadends by raising
	// its priority only); AWC becomes incomplete.
	LearnNone
)

// Options configures Solve and SolveAsync. The zero value requests AWC with
// unrestricted resolvent-based learning, the paper's 10000-cycle cutoff,
// and all-zero initial values.
type Options struct {
	// Algorithm selects AWC (default), DB, or ABT.
	Algorithm AlgorithmKind
	// Learning selects AWC's learning strategy; ignored by DB and ABT.
	Learning LearningKind
	// LearningSizeBound, when positive, is the k of size-bounded learning
	// (kthRslv): only nogoods of size ≤ k are recorded.
	LearningSizeBound int
	// Initial supplies per-variable initial values; nil means value 0 for
	// every variable, and InitialSeed != 0 draws them at random.
	Initial SliceAssignment
	// InitialSeed, when nonzero and Initial is nil, draws uniform random
	// initial values deterministically from this seed.
	InitialSeed int64
	// MaxCycles is the synchronous cutoff; 0 means 10000 (Solve only).
	MaxCycles int
	// Timeout bounds SolveAsync's wall-clock time; 0 means 30s.
	Timeout time.Duration
	// MaxJitter, when positive, randomizes SolveAsync's message delivery
	// delay in [0, MaxJitter).
	MaxJitter time.Duration
	// FaultProfile, when non-empty, injects a deterministic fault schedule
	// into SolveAsync and SolveTCP (Solve has no network). The syntax is
	// faults.ProfileSyntax: comma-separated drop=P, dup=P, delay=DUR,
	// crash=AGENT@STEPS[rDUR], partition=AT+DUR (or AT+never), or the
	// "chaos" preset. The algorithms ride out every profile the transport
	// can survive; the Result transport counters report what it cost.
	FaultProfile string
	// FaultSeed seeds the fault schedule's hash-keyed decisions; 0 means 1.
	// Same profile + same seed = same faults, independent of scheduling.
	FaultSeed int64
	// Trace, when non-nil, receives one event per synchronous cycle
	// (Solve only).
	Trace func(CycleEvent)
	// WatchdogCadence overrides the stall watchdog's sampling period in
	// SolveAsync and SolveTCP; 0 means progress.DefaultCadence (25ms).
	// Sampling is observational only — it never changes run results.
	WatchdogCadence time.Duration
	// Telemetry, when non-nil, attaches the unified observability layer:
	// metrics accumulate in its registry and, when it carries an event
	// stream, the run emits the schema-2 JSONL telemetry stream (meta,
	// per-cycle / per-sample progress, per-agent totals, end verdict,
	// metrics snapshot). Telemetry is observationally inert: enabling it
	// never changes cycles, maxcck, traces, or any other result.
	Telemetry *Telemetry
	// Retention bounds each agent's learned-nogood store (AWC and ABT; DB
	// does not learn). The zero value is the paper's unbounded reference.
	// Parse CLI syntax ("all", "lru:512", "activity:512") with
	// ParseRetention. Bounded policies reach the same verdicts as the
	// reference — learned nogoods are implied by the problem's constraints
	// — at the possible cost of re-deriving forgotten knowledge.
	Retention Retention
	// TCPShards splits SolveTCP's hub across N relay listeners (node v
	// connects to shard v mod N); 0 or 1 means a single listener. Sharding
	// scales socket I/O and decoding without changing any routing decision:
	// verdicts and message counts are identical across shard counts.
	TCPShards int
	// TCPListen binds SolveTCP's relays to fixed "host:port" addresses
	// instead of loopback ephemeral ports; required for external worker
	// processes. When non-empty it determines the shard count, which must
	// match TCPShards if both are set.
	TCPListen []string
	// TCPExternal suppresses SolveTCP's in-process nodes: the hub listens
	// and external workers (SolveTCPWorker, cmd/dcspnode) own the agents.
	TCPExternal bool
	// TCPOnListen, when non-nil, is called once with the bound relay
	// addresses in shard order before any node starts.
	TCPOnListen func(addrs []string)
	// WireCodec selects SolveTCP's wire format: "" or "binary" for the
	// length-prefixed zero-copy binary codec (default), "json" for the
	// newline-delimited JSON fallback. Negotiation is per connection — a
	// JSON-only peer always gets the fallback — and the verdict is
	// codec-independent.
	WireCodec string
	// WireNoBatch disables SolveTCP's frame batching: every frame is
	// written and flushed individually instead of coalescing into
	// size-bounded batches with one ack watermark per link.
	WireNoBatch bool
	// WireChecksum arms the CRC32C frame trailer on SolveTCP's binary
	// connections (hub side; workers request it in their hellos): damaged
	// frames are detected, dropped, counted, and recovered by
	// retransmission instead of corrupting the decode.
	WireChecksum bool
	// TCPHeartbeat is SolveTCP's liveness beacon period on every hub↔node
	// link; 0 means 500ms, negative disables liveness.
	TCPHeartbeat time.Duration
	// TCPDeadPeerTimeout is how long a node may stay silent before the hub
	// declares it dead; 0 means 4× the heartbeat period.
	TCPDeadPeerTimeout time.Duration
	// TCPReconnectGrace is how long the hub parks an unreachable node's
	// frames awaiting its re-hello (a worker redial or process relaunch)
	// before failing the run; 0 means 3s, negative fails immediately.
	TCPReconnectGrace time.Duration
	// Causal, when non-nil, attaches the causal-tracing layer
	// (internal/causal): every delivered message carries a deterministic
	// (agent, counter) trace ID, every agent activation is recorded as a
	// recv→compute→sends span, and every learned or stored nogood records
	// its cause set — the schema-3 span events dcsptrace turns into the
	// critical path, the nogood provenance DAG, and the Perfetto export.
	// The stream may be the run's Telemetry bundle (spans interleave with
	// the other events) or a separate one (a dedicated -trace-out file);
	// a separate stream gets its own meta and end events so dcsptrace
	// sees the runtime and verdict. Causal tracing is observationally
	// inert: enabling it never changes verdicts, assignments, message
	// counts, or any non-span event (pinned by TestCausalInert).
	Causal *Telemetry
	// WarmCache, when non-nil, warm-starts AWC from nogoods learned by
	// previous runs: before the run each agent is seeded with the cached
	// nogoods mentioning its variable (when the cache holds an entry
	// admissible for p — same variables and domains, constraint keys a
	// subset of p's), and after a synchronous Solve the surviving learned
	// nogoods are harvested back into the cache. Seeding charges no
	// checks; the measured effect is the cycles/checks delta BENCH_6.json
	// reports. Ignored by DB and ABT.
	WarmCache *NogoodCache
}

// Retention is a nogood-store retention policy; see the nogood package for
// the policy semantics (RetainAll / RetainLRU / RetainActivity).
type Retention = nogood.Retention

// Retention policy kinds, re-exported for Options.Retention construction.
const (
	// RetainAll never evicts (the reference).
	RetainAll = nogood.RetainAll
	// RetainLRU evicts the least-recently-used learned nogood over the cap.
	RetainLRU = nogood.RetainLRU
	// RetainActivity evicts the lowest-value learned nogood over the cap
	// (fewest violation hits, then longest, then stalest).
	RetainActivity = nogood.RetainActivity
)

// ParseRetention parses the -retention flag syntax: "all", "lru:<cap>", or
// "activity:<cap>".
func ParseRetention(s string) (Retention, error) { return nogood.ParseRetention(s) }

// NogoodCache is the persistent cross-run nogood cache; see Options.WarmCache.
type NogoodCache = nogood.Cache

// NewNogoodCache returns an empty warm-start cache.
func NewNogoodCache() *NogoodCache { return nogood.NewCache() }

// LoadNogoodCache reads a cache written by its Save method; a missing file
// yields an empty cache.
func LoadNogoodCache(path string) (*NogoodCache, error) { return nogood.LoadCache(path) }

// CycleEvent describes one completed synchronous cycle for tracing.
type CycleEvent = sim.CycleEvent

// Result reports a solving attempt.
type Result struct {
	// Solved reports whether a solution was found.
	Solved bool
	// Insoluble reports a proof that no solution exists (complete
	// configurations only: AWC with unrestricted learning, or ABT).
	Insoluble bool
	// Assignment is the solution when Solved, otherwise the final state.
	Assignment SliceAssignment
	// Cycles is the synchronous cycle count (Solve only).
	Cycles int
	// MaxCCK is the paper's computation metric: the sum over cycles of the
	// per-cycle maximum number of nogood checks across agents (Solve only).
	MaxCCK int64
	// TotalChecks sums all agents' nogood checks.
	TotalChecks int64
	// Messages is the total number of messages delivered.
	Messages int64
	// MessagesByType breaks synchronous deliveries down by message kind
	// (e.g. "core.Ok", "core.NogoodMsg"); nil for asynchronous runs.
	MessagesByType map[string]int
	// Duration is the wall-clock time (SolveAsync only).
	Duration time.Duration

	// Transport counters (SolveAsync and SolveTCP). Nonzero counts mean the
	// reliability layer did work: frames resent past a drop or partition,
	// duplicate deliveries suppressed, crashed agents restarted from their
	// checkpoints. A clean TCP run may still retransmit under congestion.
	Retransmits          int64
	DuplicatesSuppressed int64
	Restarts             int64
	// Partitioned counts deliveries cut (and, for healing windows,
	// deferred) by a partition; PartitionHeals counts windows that healed
	// within the run.
	Partitioned    int64
	PartitionHeals int64
	// Reconnects counts node connections re-established mid-run (worker
	// redials and cold process relaunches); HeartbeatTimeouts counts
	// dead-peer declarations; CorruptFrames counts frames rejected by the
	// CRC32C trailer and recovered by retransmission (SolveTCP only).
	Reconnects        int64
	HeartbeatTimeouts int64
	CorruptFrames     int64

	// Wire-level counters (SolveTCP only). BytesSent and BytesRecv count
	// bytes crossing the hub's sockets (hub→nodes and nodes→hub);
	// BatchedFrames counts frames that traveled inside coalesced batches;
	// BinaryConns counts node connections that negotiated the binary codec
	// (the rest fell back to JSON).
	BytesSent     int64
	BytesRecv     int64
	BatchedFrames int64
	BinaryConns   int64
}

func (o Options) learning() core.Learning {
	l := core.Learning{Kind: core.LearnResolvent, SizeBound: o.LearningSizeBound, Retention: o.Retention}
	switch o.Learning {
	case LearnMCS:
		l.Kind = core.LearnMCS
	case LearnNone:
		l.Kind = core.LearnNone
	}
	return l
}

func (o Options) initial(p *Problem) (SliceAssignment, error) {
	if o.Initial != nil {
		if len(o.Initial) != p.NumVars() {
			return nil, fmt.Errorf("discsp: %d initial values for %d variables", len(o.Initial), p.NumVars())
		}
		return o.Initial, nil
	}
	if o.InitialSeed != 0 {
		return gen.RandomInitial(p, o.InitialSeed), nil
	}
	init := make(SliceAssignment, p.NumVars())
	for v := 0; v < p.NumVars(); v++ {
		init[v] = p.Domain(Var(v))[0]
	}
	return init, nil
}

func (o Options) faults() (*faults.Config, error) {
	if o.FaultProfile == "" {
		return nil, nil
	}
	seed := o.FaultSeed
	if seed == 0 {
		seed = 1
	}
	cfg, err := faults.ParseProfile(o.FaultProfile, seed)
	if err != nil {
		return nil, fmt.Errorf("discsp: fault profile: %w", err)
	}
	return cfg, nil
}

func (o Options) makeAgent(p *Problem, init SliceAssignment) func(v csp.Var) sim.Agent {
	switch o.Algorithm {
	case DB:
		return func(v csp.Var) sim.Agent { return breakout.NewAgent(v, p, init[v]) }
	case ABT:
		return func(v csp.Var) sim.Agent { return abt.NewAgentRetention(v, p, init[v], o.Retention) }
	default:
		learning := o.learning()
		seeds := o.warmSeeds(p)
		return func(v csp.Var) sim.Agent {
			a := core.NewAgent(v, p, init[v], learning)
			if seeds != nil {
				a.SeedNogoods(seeds[v])
			}
			return a
		}
	}
}

// warmSeeds resolves the warm-start cache against p once: the admissible
// cached nogoods, grouped per variable they mention — the same fan-out a
// NogoodMsg would have had. Nil when there is no cache or no admissible
// entry (cold start).
func (o Options) warmSeeds(p *Problem) [][]csp.Nogood {
	if o.WarmCache == nil {
		return nil
	}
	cached := o.WarmCache.Seed(p)
	if len(cached) == 0 {
		return nil
	}
	seeds := make([][]csp.Nogood, p.NumVars())
	for _, ng := range cached {
		for i := 0; i < ng.Len(); i++ {
			v := ng.At(i).Var
			seeds[v] = append(seeds[v], ng)
		}
	}
	return seeds
}

// learnedNogooder is implemented by agents exposing their surviving learned
// nogoods for warm-start harvesting.
type learnedNogooder interface{ LearnedNogoods() []csp.Nogood }

// harvestWarmCache folds every agent's surviving learned nogoods back into
// the warm-start cache after a run.
func harvestWarmCache(cache *NogoodCache, p *Problem, agents []sim.Agent) {
	if cache == nil {
		return
	}
	var all []csp.Nogood
	seen := make(map[string]struct{})
	for _, a := range agents {
		ln, ok := a.(learnedNogooder)
		if !ok {
			continue
		}
		for _, ng := range ln.LearnedNogoods() {
			if _, dup := seen[ng.Key()]; dup {
				continue
			}
			seen[ng.Key()] = struct{}{}
			all = append(all, ng)
		}
	}
	cache.Put(p, all)
}

// causalStart builds the run's tracer from Options.Causal. A causal stream
// separate from the run's Telemetry stream gets its own meta event so the
// graph builder learns the runtime (it classifies inter-span latency as
// queue vs. wire from it).
func (o Options) causalStart(p *Problem, runtime string) *causal.Tracer {
	if o.Causal == nil {
		return nil
	}
	if o.Causal != o.Telemetry {
		o.Causal.Emit(telemetry.Event{
			Kind:      telemetry.KindMeta,
			Runtime:   runtime,
			Algorithm: o.AlgorithmName(),
			Vars:      p.NumVars(),
			Nogoods:   p.NumNogoods(),
		})
	}
	return causal.New(o.Causal, p)
}

// causalEnd closes a separate causal stream with the run verdict — which
// doubles as the stream-completeness marker dcsptrace requires. When the
// causal stream is the Telemetry stream, the telemetry finalizers already
// close it.
func (o Options) causalEnd(out Result) {
	if o.Causal == nil || o.Causal == o.Telemetry {
		return
	}
	o.Causal.Emit(telemetry.Event{
		Kind:        telemetry.KindEnd,
		Solved:      out.Solved,
		Insoluble:   out.Insoluble,
		Cycles:      out.Cycles,
		MaxCCK:      out.MaxCCK,
		TotalChecks: out.TotalChecks,
		Messages:    out.Messages,
		DurationUS:  out.Duration.Microseconds(),
	})
}

// causalAttach is implemented by agents that record learn/store/consult
// events against their tracer handle.
type causalAttach interface{ SetCausal(*causal.AgentTracer) }

// withCausal wraps makeAgent so every built agent — including a
// crash-restarted incarnation, which the runtimes rebuild through the same
// constructor — attaches its tracer handle. Tracer.Agent returns the same
// handle every time, so restarts continue their predecessor's numbering.
func withCausal(tr *causal.Tracer, makeAgent func(v csp.Var) sim.Agent) func(v csp.Var) sim.Agent {
	if tr == nil {
		return makeAgent
	}
	return func(v csp.Var) sim.Agent {
		a := makeAgent(v)
		if ca, ok := a.(causalAttach); ok {
			ca.SetCausal(tr.Agent(int(v)))
		}
		return a
	}
}

// Solve runs the selected algorithm on the deterministic synchronous
// simulator and reports the paper's cost metrics.
func Solve(p *Problem, opts Options) (Result, error) {
	init, err := opts.initial(p)
	if err != nil {
		return Result{}, err
	}
	tracer := opts.causalStart(p, "sync")
	agents := buildAgents(p.NumVars(), withCausal(tracer, opts.makeAgent(p, init)))
	trace := opts.Trace
	tel := opts.Telemetry
	if tel != nil {
		tel.Emit(telemetry.Event{
			Kind:      telemetry.KindMeta,
			Runtime:   "sync",
			Algorithm: opts.AlgorithmName(),
			Vars:      p.NumVars(),
			Nogoods:   p.NumNogoods(),
		})
		instrumentAgents(tel.Registry(), agents)
		trace = teeCycleEvents(tel, agents, opts.Trace)
	}
	res, err := sim.Run(p, agents, sim.Options{MaxCycles: opts.MaxCycles, Trace: trace, Causal: tracer})
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Solved:         res.Solved,
		Insoluble:      res.Insoluble,
		Assignment:     res.Assignment,
		Cycles:         res.Cycles,
		MaxCCK:         res.MaxCCK,
		TotalChecks:    res.TotalChecks,
		Messages:       int64(res.Messages),
		MessagesByType: res.MessagesByType,
	}
	if tel != nil {
		emitSyncFinal(tel, agents, out)
	}
	opts.causalEnd(out)
	if opts.Algorithm == AWC || opts.Algorithm == 0 {
		harvestWarmCache(opts.WarmCache, p, agents)
	}
	return out, nil
}

// instrumentAgents attaches per-agent store gauges and learned-nogood
// length histograms. Called once before the run starts, so the sampling
// paths never touch the registry's maps.
func instrumentAgents(reg *MetricsRegistry, agents []sim.Agent) {
	if reg == nil {
		return
	}
	for i, a := range agents {
		ia, ok := a.(instrumented)
		if !ok {
			continue
		}
		id := strconv.Itoa(i)
		ia.Instrument(telemetry.StoreMetrics{
			Size:      reg.Gauge(telemetry.Name("discsp_store_nogoods", "agent", id)),
			Lengths:   reg.Histogram(telemetry.Name("discsp_learned_nogood_len", "agent", id), telemetry.NogoodLenBuckets),
			Evictions: reg.Counter(telemetry.Name("discsp_store_evictions", "agent", id)),
		})
	}
}

// teeCycleEvents chains the caller's trace hook (if any) with a telemetry
// tee that emits one cycle event per synchronous cycle, carrying the summed
// nogood-store size alongside the simulator's message and check counters.
// Histograms are resolved here, once, before the run.
func teeCycleEvents(tel *Telemetry, agents []sim.Agent, inner func(CycleEvent)) func(CycleEvent) {
	storeAgents := make([]storeSizer, 0, len(agents))
	for _, a := range agents {
		if s, ok := a.(storeSizer); ok {
			storeAgents = append(storeAgents, s)
		}
	}
	reg := tel.Registry()
	msgHist := reg.Histogram("discsp_cycle_messages", telemetry.MessageBuckets)
	checksHist := reg.Histogram("discsp_cycle_max_checks", telemetry.ChecksBuckets)
	return func(ev CycleEvent) {
		if inner != nil {
			inner(ev)
		}
		var storeTotal int64
		for _, s := range storeAgents {
			storeTotal += int64(s.StoreSize())
		}
		tel.Emit(telemetry.Event{
			Kind:        telemetry.KindCycle,
			Cycle:       ev.Cycle,
			MessagesIn:  ev.MessagesIn,
			MessagesOut: ev.MessagesOut,
			MaxChecks:   ev.MaxChecks,
			StoreTotal:  storeTotal,
		})
		msgHist.Observe(int64(ev.MessagesIn))
		checksHist.Observe(ev.MaxChecks)
	}
}

// emitSyncFinal closes a synchronous run's telemetry: per-agent totals, run
// counters, the end verdict, and a metrics snapshot.
func emitSyncFinal(tel *Telemetry, agents []sim.Agent, out Result) {
	for i, a := range agents {
		ev := telemetry.Event{Kind: telemetry.KindAgent, Agent: i, Checks: a.Checks()}
		if s, ok := a.(storeSizer); ok {
			ev.StoreSize = int64(s.StoreSize())
		}
		tel.Emit(ev)
	}
	reg := tel.Registry()
	reg.Counter("discsp_cycles_total").Add(int64(out.Cycles))
	reg.Counter("discsp_checks_total").Add(out.TotalChecks)
	reg.Counter("discsp_messages_total").Add(out.Messages)
	tel.Emit(telemetry.Event{
		Kind:        telemetry.KindEnd,
		Solved:      out.Solved,
		Insoluble:   out.Insoluble,
		Cycles:      out.Cycles,
		MaxCCK:      out.MaxCCK,
		TotalChecks: out.TotalChecks,
		Messages:    out.Messages,
	})
	tel.EmitSnapshot()
}

// emitNetFinal closes an async or tcp run's telemetry stream with the end
// verdict (including transport counters when any are nonzero) and a metrics
// snapshot. The runtimes have already emitted their per-agent and per-link
// events and folded their counters into the registry.
func emitNetFinal(tel *Telemetry, out Result) {
	if tel == nil {
		return
	}
	ev := telemetry.Event{
		Kind:        telemetry.KindEnd,
		Solved:      out.Solved,
		Insoluble:   out.Insoluble,
		TotalChecks: out.TotalChecks,
		Messages:    out.Messages,
		DurationUS:  out.Duration.Microseconds(),
	}
	if t := out.Transport(); !t.IsZero() {
		ev.Transport = &t
	}
	tel.Emit(ev)
	tel.EmitSnapshot()
}

// SolveAsync runs the selected algorithm on the goroutine-per-agent
// asynchronous runtime. Cycle-based metrics do not apply; Duration,
// Messages, and TotalChecks are reported instead.
func SolveAsync(p *Problem, opts Options) (Result, error) {
	init, err := opts.initial(p)
	if err != nil {
		return Result{}, err
	}
	fcfg, err := opts.faults()
	if err != nil {
		return Result{}, err
	}
	if opts.Telemetry != nil {
		opts.Telemetry.Emit(telemetry.Event{
			Kind:      telemetry.KindMeta,
			Runtime:   "async",
			Algorithm: opts.AlgorithmName(),
			Vars:      p.NumVars(),
			Nogoods:   p.NumNogoods(),
		})
	}
	tracer := opts.causalStart(p, "async")
	res, err := async.Run(p, withCausal(tracer, opts.makeAgent(p, init)), async.Options{
		Timeout:         opts.Timeout,
		MaxJitter:       opts.MaxJitter,
		Seed:            opts.InitialSeed,
		Faults:          fcfg,
		WatchdogCadence: opts.WatchdogCadence,
		Telemetry:       opts.Telemetry,
		Causal:          tracer,
	})
	out := Result{
		Solved:               res.Solved,
		Insoluble:            res.Insoluble,
		Assignment:           res.Assignment,
		TotalChecks:          res.TotalChecks,
		Messages:             res.Messages,
		Duration:             res.Duration,
		Retransmits:          res.Retransmits,
		DuplicatesSuppressed: res.DuplicatesSuppressed,
		Restarts:             res.Restarts,
		Partitioned:          res.Partitioned,
		PartitionHeals:       res.PartitionHeals,
	}
	emitNetFinal(opts.Telemetry, out)
	opts.causalEnd(out)
	return out, err
}

// wireCodec parses Options.WireCodec ("" = binary).
func (o Options) wireCodec() (wire.Codec, error) {
	c, err := wire.ParseCodec(o.WireCodec)
	if err != nil {
		return c, fmt.Errorf("discsp: %w", err)
	}
	return c, nil
}

// SolveTCP runs the selected algorithm over an actual TCP network: a hub of
// sharded relays routes wire-framed messages between one node per agent.
// The same agents as Solve and SolveAsync cross a real socket boundary —
// the paper's "can work on any type of distributed systems" claim in its
// strongest locally-testable form. Metrics follow SolveAsync's, plus the
// wire-level byte/batch counters. Frames travel in the negotiated codec
// (binary by default, JSON fallback; see Options.WireCodec) and coalesce
// into batches unless Options.WireNoBatch.
func SolveTCP(p *Problem, opts Options) (Result, error) {
	init, err := opts.initial(p)
	if err != nil {
		return Result{}, err
	}
	fcfg, err := opts.faults()
	if err != nil {
		return Result{}, err
	}
	codec, err := opts.wireCodec()
	if err != nil {
		return Result{}, err
	}
	if opts.Telemetry != nil {
		opts.Telemetry.Emit(telemetry.Event{
			Kind:      telemetry.KindMeta,
			Runtime:   "tcp",
			Algorithm: opts.AlgorithmName(),
			Vars:      p.NumVars(),
			Nogoods:   p.NumNogoods(),
		})
	}
	tracer := opts.causalStart(p, "tcp")
	res, err := netrun.Run(p, withCausal(tracer, opts.makeAgent(p, init)), netrun.Options{
		Timeout:         opts.Timeout,
		Faults:          fcfg,
		WatchdogCadence: opts.WatchdogCadence,
		Telemetry:       opts.Telemetry,
		Causal:          tracer,
		CausalRelay:     opts.Causal != nil,
		Shards:          opts.TCPShards,
		Codec:           codec,
		NoBatch:         opts.WireNoBatch,
		Checksum:        opts.WireChecksum,
		Heartbeat:       opts.TCPHeartbeat,
		DeadPeerTimeout: opts.TCPDeadPeerTimeout,
		ReconnectGrace:  opts.TCPReconnectGrace,
		Listen:          opts.TCPListen,
		External:        opts.TCPExternal,
		OnListen:        opts.TCPOnListen,
	})
	out := Result{
		Solved:               res.Solved,
		Insoluble:            res.Insoluble,
		Assignment:           res.Assignment,
		TotalChecks:          res.TotalChecks,
		Messages:             res.Messages,
		Duration:             res.Duration,
		Retransmits:          res.Retransmits,
		DuplicatesSuppressed: res.DuplicatesSuppressed,
		Restarts:             res.Restarts,
		Partitioned:          res.Partitioned,
		PartitionHeals:       res.PartitionHeals,
		Reconnects:           res.Reconnects,
		HeartbeatTimeouts:    res.HeartbeatTimeouts,
		CorruptFrames:        res.CorruptFrames,
		BytesSent:            res.BytesSent,
		BytesRecv:            res.BytesRecv,
		BatchedFrames:        res.BatchedFrames,
		BinaryConns:          res.BinaryConns,
	}
	emitNetFinal(opts.Telemetry, out)
	opts.causalEnd(out)
	return out, err
}

// TCPWorkerOptions configures SolveTCPWorker.
type TCPWorkerOptions struct {
	// Addrs are the hub's relay addresses in shard order (the hub's
	// Options.TCPListen, or what its TCPOnListen callback reported). Node v
	// dials Addrs[v mod len(Addrs)] — the hub's shard assignment.
	Addrs []string
	// Vars are the variables this worker owns; each becomes one node.
	Vars []int
	// DrainWindow bounds how long a node whose write failed keeps draining
	// inbound frames for the hub's stop before classifying the failure as
	// a hub death; 0 means the 1s default. Raise it for workers on slow or
	// congested links so a graceful hub shutdown racing a write is not
	// reported as a crash.
	DrainWindow time.Duration
	// ConnectTimeout bounds each node's dial-with-retry loop, both at
	// startup (the worker may launch before the hub listens) and when
	// redialing after a severed connection; 0 means 15s.
	ConnectTimeout time.Duration
	// Checksum requests the CRC32C frame trailer on this worker's binary
	// connections; it takes effect only when the hub armed WireChecksum
	// too.
	Checksum bool
	// Heartbeat is the idle-link beacon period (0 = 500ms, negative
	// disables) and DeadPeerTimeout the hub-silence bound after which a
	// node abandons its connection and redials (0 = 4× the heartbeat).
	// They should match the hub's settings.
	Heartbeat       time.Duration
	DeadPeerTimeout time.Duration
	// Causal, when non-nil, traces this worker's nodes: spans and stamped
	// trace IDs are written to the stream, and each node's hello requests
	// trace-ID propagation (the hub confirms when its run set Causal).
	// Worker streams carry no verdict — the hub's stream does — but are
	// closed with an end marker so dcsptrace accepts them. Each worker
	// process's stream is self-consistent on its own.
	Causal *Telemetry
}

// TCPWorkerStats reports one worker process's transport totals after
// SolveTCPWorker returns — the worker-side view of the reliability counters
// the hub's Result carries for in-process runs.
type TCPWorkerStats struct {
	// Reconnects counts node sessions re-established after a severed
	// connection.
	Reconnects int64
	// Retransmits counts frames resent past a lost ack.
	Retransmits int64
	// DuplicatesSuppressed counts deliveries absorbed by the dedup layer.
	DuplicatesSuppressed int64
	// CorruptFrames counts inbound frames rejected by the CRC32C trailer
	// and recovered by hub-side retransmission.
	CorruptFrames int64
}

// SolveTCPWorker runs agent nodes for a subset of p's variables against an
// external SolveTCP hub (one started with Options.TCPExternal — in another
// goroutine, process, or machine; cmd/dcspnode is the process form). opts
// supplies the algorithm configuration, which must match the hub's problem,
// and the wire options (WireCodec, WireNoBatch) for this worker's
// connections. It blocks until the hub finishes the run and tears the
// connections down; the hub's SolveTCP result carries the verdict, and the
// returned stats carry this worker's transport totals. Workers survive a
// hub that is not yet listening (dial retry until ConnectTimeout) and
// connections severed mid-solve (redial, re-hello, and replay).
func SolveTCPWorker(p *Problem, opts Options, w TCPWorkerOptions) (TCPWorkerStats, error) {
	init, err := opts.initial(p)
	if err != nil {
		return TCPWorkerStats{}, err
	}
	codec, err := opts.wireCodec()
	if err != nil {
		return TCPWorkerStats{}, err
	}
	var tracer *causal.Tracer
	if w.Causal != nil {
		w.Causal.Emit(telemetry.Event{
			Kind:      telemetry.KindMeta,
			Runtime:   "tcp",
			Algorithm: opts.AlgorithmName(),
			Vars:      p.NumVars(),
			Nogoods:   p.NumNogoods(),
		})
		tracer = causal.New(w.Causal, p)
	}
	st, err := netrun.RunWorker(p, withCausal(tracer, opts.makeAgent(p, init)), netrun.WorkerOptions{
		Addrs:           w.Addrs,
		Vars:            w.Vars,
		Codec:           codec,
		NoBatch:         opts.WireNoBatch,
		DrainWindow:     w.DrainWindow,
		ConnectTimeout:  w.ConnectTimeout,
		Checksum:        w.Checksum,
		Heartbeat:       w.Heartbeat,
		DeadPeerTimeout: w.DeadPeerTimeout,
		Causal:          tracer,
	})
	if w.Causal != nil {
		w.Causal.Emit(telemetry.Event{Kind: telemetry.KindEnd})
	}
	return TCPWorkerStats{
		Reconnects:           st.Reconnects,
		Retransmits:          st.Retransmits,
		DuplicatesSuppressed: st.DuplicatesSuppressed,
		CorruptFrames:        st.CorruptFrames,
	}, err
}

// IsTimeout reports whether err is (or wraps) a runtime deadline expiry
// from SolveAsync or SolveTCP. Solve has no wall-clock deadline; its cutoff
// is MaxCycles, reported as an unsolved Result, not an error.
func IsTimeout(err error) bool {
	return errors.Is(err, async.ErrTimeout) || errors.Is(err, netrun.ErrTimeout)
}

// TimeoutReport extracts the stall watchdog's diagnosis from a timeout
// error: the stalled / livelock / converging classification with per-agent
// progress that SolveAsync and SolveTCP attach when their deadline expires.
// ok is false when err carries no report (not a timeout, or the run died
// before the watchdog sampled).
func TimeoutReport(err error) (report string, ok bool) {
	var aerr *async.TimeoutError
	if errors.As(err, &aerr) && aerr.Report != nil {
		return aerr.Report.String(), true
	}
	var nerr *netrun.TimeoutError
	if errors.As(err, &nerr) && nerr.Report != nil {
		return nerr.Report.String(), true
	}
	return "", false
}

func buildAgents(n int, makeAgent func(v csp.Var) sim.Agent) []sim.Agent {
	agents := make([]sim.Agent, n)
	for v := 0; v < n; v++ {
		agents[v] = makeAgent(csp.Var(v))
	}
	return agents
}
